use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::Suffix;

/// Maximum number of digits an identifier may have.
///
/// `d = 40`, `b = 16` (a 160-bit SHA-1 identifier) — the largest configuration
/// evaluated in the paper — fits comfortably.
pub const MAX_DIGITS: usize = 64;

/// A fixed-length node (or object) identifier of `d` digits in base `b`.
///
/// Digits are indexed **from the right**: `digit(0)` is the rightmost digit,
/// as in the paper's notation `x[i]`. The value is `Copy` and cheap to pass
/// around; the base is carried by [`IdSpace`](crate::IdSpace), not by the
/// identifier itself.
///
/// # Examples
///
/// ```
/// use hyperring_id::IdSpace;
/// let space = IdSpace::new(8, 5)?;
/// let x = space.parse_id("10261")?;
/// assert_eq!(x.digit(0), 1);
/// assert_eq!(x.digit(2), 2);
/// assert_eq!(x.to_string(), "10261");
/// # Ok::<(), hyperring_id::IdError>(())
/// ```
#[derive(Clone, Copy)]
pub struct NodeId {
    /// Number of digits (`d`).
    len: u8,
    /// `digits[i]` is the i-th digit from the right.
    digits: [u8; MAX_DIGITS],
}

impl NodeId {
    /// Creates an identifier from digits given **rightmost first**.
    ///
    /// This is a low-level constructor; prefer
    /// [`IdSpace::id_from_digits`](crate::IdSpace::id_from_digits), which also
    /// validates digits against the base.
    ///
    /// # Panics
    ///
    /// Panics if `digits` is empty or longer than [`MAX_DIGITS`].
    pub fn from_digits_lsd(digits: &[u8]) -> Self {
        assert!(
            !digits.is_empty() && digits.len() <= MAX_DIGITS,
            "digit count {} out of range 1..={}",
            digits.len(),
            MAX_DIGITS
        );
        let mut buf = [0u8; MAX_DIGITS];
        buf[..digits.len()].copy_from_slice(digits);
        NodeId {
            len: digits.len() as u8,
            digits: buf,
        }
    }

    /// Number of digits `d` in this identifier.
    #[inline]
    pub fn digit_count(&self) -> usize {
        self.len as usize
    }

    /// The `i`-th digit **from the right** (the paper's `x[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.digit_count()`.
    #[inline]
    pub fn digit(&self, i: usize) -> u8 {
        assert!(
            i < self.len as usize,
            "digit index {i} out of range for {}-digit id",
            self.len
        );
        self.digits[i]
    }

    /// Digits in rightmost-first order.
    #[inline]
    pub fn digits_lsd(&self) -> &[u8] {
        &self.digits[..self.len as usize]
    }

    /// Length of the longest common suffix of `self` and `other` in digits
    /// (the paper's `|csuf(x, y)|`).
    ///
    /// For identifiers of equal length this is at most `d`, and equals `d`
    /// exactly when the identifiers are equal.
    #[inline]
    pub fn csuf_len(&self, other: &NodeId) -> usize {
        let n = usize::min(self.len as usize, other.len as usize);
        let mut k = 0;
        while k < n && self.digits[k] == other.digits[k] {
            k += 1;
        }
        k
    }

    /// The longest common suffix of `self` and `other` as a [`Suffix`].
    pub fn csuf(&self, other: &NodeId) -> Suffix {
        Suffix::from_digits_lsd(&self.digits[..self.csuf_len(other)])
    }

    /// The suffix of `self` consisting of its rightmost `k` digits.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.digit_count()`.
    pub fn suffix(&self, k: usize) -> Suffix {
        assert!(
            k <= self.len as usize,
            "suffix length {k} exceeds digit count {}",
            self.len
        );
        Suffix::from_digits_lsd(&self.digits[..k])
    }

    /// Whether this identifier ends with `suffix`.
    #[inline]
    pub fn has_suffix(&self, suffix: &Suffix) -> bool {
        let k = suffix.len();
        k <= self.len as usize && self.digits[..k] == *suffix.digits_lsd()
    }

    /// Numeric value of the identifier for base `base`, if it fits in `u128`.
    ///
    /// Useful in tests and for small identifier spaces; returns `None` when
    /// `base^d` overflows `u128`.
    pub fn to_value(&self, base: u16) -> Option<u128> {
        let mut acc: u128 = 0;
        for i in (0..self.len as usize).rev() {
            acc = acc.checked_mul(base as u128)?;
            acc = acc.checked_add(self.digits[i] as u128)?;
        }
        Some(acc)
    }
}

impl PartialEq for NodeId {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.digits_lsd() == other.digits_lsd()
    }
}

impl Eq for NodeId {}

impl Hash for NodeId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.digits_lsd().hash(state);
    }
}

impl PartialOrd for NodeId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeId {
    /// Orders identifiers by numeric value (most-significant digit first).
    fn cmp(&self, other: &Self) -> Ordering {
        self.len.cmp(&other.len).then_with(|| {
            for i in (0..self.len as usize).rev() {
                match self.digits[i].cmp(&other.digits[i]) {
                    Ordering::Equal => continue,
                    non_eq => return non_eq,
                }
            }
            Ordering::Equal
        })
    }
}

fn digit_char(d: u8) -> char {
    match d {
        0..=9 => (b'0' + d) as char,
        10..=35 => (b'a' + (d - 10)) as char,
        _ => '?',
    }
}

impl fmt::Display for NodeId {
    /// Prints digits most-significant first, e.g. `21233`, using `0-9a-z`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len as usize).rev() {
            write!(f, "{}", digit_char(self.digits[i]))?;
        }
        Ok(())
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(digits_msd: &[u8]) -> NodeId {
        let lsd: Vec<u8> = digits_msd.iter().rev().copied().collect();
        NodeId::from_digits_lsd(&lsd)
    }

    #[test]
    fn digit_indexing_is_right_to_left() {
        // Paper: the 0th digit is the rightmost.
        let x = id(&[2, 1, 2, 3, 3]); // "21233"
        assert_eq!(x.digit(0), 3);
        assert_eq!(x.digit(1), 3);
        assert_eq!(x.digit(2), 2);
        assert_eq!(x.digit(3), 1);
        assert_eq!(x.digit(4), 2);
    }

    #[test]
    fn csuf_of_paper_examples() {
        // 21233 and 31033 share suffix "33".
        assert_eq!(id(&[2, 1, 2, 3, 3]).csuf_len(&id(&[3, 1, 0, 3, 3])), 2);
        // 10261 and 00261 share suffix "0261".
        assert_eq!(id(&[1, 0, 2, 6, 1]).csuf_len(&id(&[0, 0, 2, 6, 1])), 4);
        // Identical ids share all digits.
        assert_eq!(id(&[1, 0, 2, 6, 1]).csuf_len(&id(&[1, 0, 2, 6, 1])), 5);
        // Nothing in common.
        assert_eq!(id(&[1, 2]).csuf_len(&id(&[2, 1])), 0);
    }

    #[test]
    fn csuf_is_symmetric() {
        let a = id(&[4, 7, 0, 5, 1]);
        let b = id(&[1, 0, 2, 6, 1]);
        assert_eq!(a.csuf_len(&b), b.csuf_len(&a));
        assert_eq!(a.csuf_len(&b), 1); // both end in 1
    }

    #[test]
    fn suffix_and_has_suffix() {
        let x = id(&[1, 0, 2, 6, 1]);
        let s = x.suffix(3); // "261"
        assert!(x.has_suffix(&s));
        assert!(id(&[0, 0, 2, 6, 1]).has_suffix(&s));
        assert!(!id(&[1, 0, 3, 6, 1]).has_suffix(&s));
        assert!(x.has_suffix(&x.suffix(0)));
        assert!(x.has_suffix(&x.suffix(5)));
    }

    #[test]
    fn display_most_significant_first() {
        assert_eq!(id(&[2, 1, 2, 3, 3]).to_string(), "21233");
        assert_eq!(id(&[0, 0, 2, 6, 1]).to_string(), "00261");
        let hex = id(&[15, 0, 10]);
        assert_eq!(hex.to_string(), "f0a");
    }

    #[test]
    fn ordering_is_numeric() {
        let a = id(&[0, 9, 9]);
        let b = id(&[1, 0, 0]);
        assert!(a < b);
        assert_eq!(a.to_value(10), Some(99));
        assert_eq!(b.to_value(10), Some(100));
    }

    #[test]
    fn to_value_detects_overflow() {
        let x = NodeId::from_digits_lsd(&[1; 40]);
        assert!(x.to_value(16).is_none()); // 16^40 > u128::MAX
        let y = NodeId::from_digits_lsd(&[1; 31]);
        assert!(y.to_value(16).is_some());
    }

    #[test]
    #[should_panic(expected = "digit index")]
    fn digit_out_of_range_panics() {
        let _ = id(&[1, 2, 3]).digit(3);
    }

    #[test]
    fn equality_and_hash_are_value_based() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(id(&[1, 2, 3]));
        assert!(set.contains(&id(&[1, 2, 3])));
        assert!(!set.contains(&id(&[1, 2, 4])));
    }
}
