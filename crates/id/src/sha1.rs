//! A small, dependency-free SHA-1 implementation (FIPS 180-1).
//!
//! The paper generates node and object identifiers by hashing (MD5 or SHA-1).
//! SHA-1 is long broken for collision resistance, but identifier generation
//! only needs uniform dispersion, for which it remains perfectly adequate —
//! and it keeps identifiers bit-compatible with the systems the paper cites
//! (PRR, Pastry, Tapestry all use 160-bit hashed identifiers).

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use hyperring_id::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xa9);
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len_bits: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bits: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len_bits = self.len_bits.wrapping_add((data.len() as u64) * 8);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = usize::min(64 - self.buf_len, rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let len_bits = self.len_bits;
        // Pad: 0x80, zeros to 56 mod 64, then the 64-bit big-endian length.
        let rem = (self.buf_len + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        let mut pad = vec![0u8; 1 + zeros + 8];
        pad[0] = 0x80;
        pad[1 + zeros..].copy_from_slice(&len_bits.to_be_bytes());
        self.update(&pad);
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
///
/// # Examples
///
/// ```
/// let d = hyperring_id::sha1(b"");
/// assert_eq!(d[..4], [0xda, 0x39, 0xa3, 0xee]);
/// ```
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Message lengths around the 55/56/64-byte padding boundaries.
        for n in 50..70usize {
            let data = vec![0xabu8; n];
            let d1 = sha1(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "length {n}");
        }
    }
}
