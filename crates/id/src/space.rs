use rand::Rng;

use crate::{IdError, NodeId, Suffix, MAX_DIGITS};

/// Configuration of an identifier space: digits of base `b`, `d` digits per
/// identifier.
///
/// The paper's evaluation uses `b = 16` with `d = 8` (32-bit identifiers) and
/// `d = 40` (160-bit identifiers); its running examples use `b = 4, d = 5`
/// (Figure 1) and `b = 8, d = 5` (Figure 2). Bases up to 36 are supported so
/// identifiers remain printable with `0-9a-z`.
///
/// # Examples
///
/// ```
/// use hyperring_id::IdSpace;
/// use rand::SeedableRng;
///
/// let space = IdSpace::new(16, 8)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = space.random_id(&mut rng);
/// assert_eq!(x.digit_count(), 8);
/// assert!(x.digits_lsd().iter().all(|&d| d < 16));
/// # Ok::<(), hyperring_id::IdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdSpace {
    base: u16,
    digits: u8,
}

impl IdSpace {
    /// Creates a space of `digits` digits in base `base`.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::InvalidBase`] unless `2 <= base <= 36`, and
    /// [`IdError::InvalidDigitCount`] unless `1 <= digits <= MAX_DIGITS`.
    pub fn new(base: u16, digits: usize) -> Result<Self, IdError> {
        if !(2..=36).contains(&base) {
            return Err(IdError::InvalidBase(base));
        }
        if digits == 0 || digits > MAX_DIGITS {
            return Err(IdError::InvalidDigitCount(digits));
        }
        Ok(IdSpace {
            base,
            digits: digits as u8,
        })
    }

    /// The digit base `b`.
    #[inline]
    pub fn base(&self) -> u16 {
        self.base
    }

    /// The number of digits `d` per identifier.
    #[inline]
    pub fn digit_count(&self) -> usize {
        self.digits as usize
    }

    /// Total number of identifiers `b^d`, if it fits in `u128`.
    pub fn capacity(&self) -> Option<u128> {
        let mut acc: u128 = 1;
        for _ in 0..self.digits {
            acc = acc.checked_mul(self.base as u128)?;
        }
        Some(acc)
    }

    /// Validates that `id` belongs to this space (digit count and digit
    /// values).
    pub fn contains(&self, id: &NodeId) -> bool {
        id.digit_count() == self.digit_count()
            && id.digits_lsd().iter().all(|&d| (d as u16) < self.base)
    }

    /// Builds an identifier from digits given **rightmost first**.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::WrongLength`] or [`IdError::DigitOutOfRange`] when
    /// the digits do not describe an identifier of this space.
    pub fn id_from_digits(&self, digits_lsd: &[u8]) -> Result<NodeId, IdError> {
        if digits_lsd.len() != self.digit_count() {
            return Err(IdError::WrongLength {
                expected: self.digit_count(),
                found: digits_lsd.len(),
            });
        }
        for &d in digits_lsd {
            if d as u16 >= self.base {
                return Err(IdError::DigitOutOfRange {
                    digit: d,
                    base: self.base,
                });
            }
        }
        Ok(NodeId::from_digits_lsd(digits_lsd))
    }

    /// Parses an identifier written most-significant digit first, e.g.
    /// `"21233"` for `b = 4, d = 5`.
    ///
    /// Digits `10..=35` are written `a..=z` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`IdError::WrongLength`] or [`IdError::InvalidDigit`] on
    /// malformed input.
    pub fn parse_id(&self, s: &str) -> Result<NodeId, IdError> {
        let mut digits = Vec::with_capacity(self.digit_count());
        for ch in s.chars().rev() {
            let d = match ch {
                '0'..='9' => ch as u8 - b'0',
                'a'..='z' => ch as u8 - b'a' + 10,
                'A'..='Z' => ch as u8 - b'A' + 10,
                _ => {
                    return Err(IdError::InvalidDigit {
                        ch,
                        base: self.base,
                    })
                }
            };
            if d as u16 >= self.base {
                return Err(IdError::InvalidDigit {
                    ch,
                    base: self.base,
                });
            }
            digits.push(d);
        }
        self.id_from_digits(&digits)
    }

    /// Parses a suffix written most-significant digit first; `""` is the
    /// empty suffix.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::InvalidDigit`] on malformed input or
    /// [`IdError::WrongLength`] if the suffix is longer than `d`.
    pub fn parse_suffix(&self, s: &str) -> Result<Suffix, IdError> {
        if s.chars().count() > self.digit_count() {
            return Err(IdError::WrongLength {
                expected: self.digit_count(),
                found: s.chars().count(),
            });
        }
        let mut digits = Vec::with_capacity(s.len());
        for ch in s.chars().rev() {
            let d = match ch {
                '0'..='9' => ch as u8 - b'0',
                'a'..='z' => ch as u8 - b'a' + 10,
                'A'..='Z' => ch as u8 - b'A' + 10,
                _ => {
                    return Err(IdError::InvalidDigit {
                        ch,
                        base: self.base,
                    })
                }
            };
            if d as u16 >= self.base {
                return Err(IdError::InvalidDigit {
                    ch,
                    base: self.base,
                });
            }
            digits.push(d);
        }
        Ok(Suffix::from_digits_lsd(&digits))
    }

    /// Builds the identifier whose numeric value is `value`.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::ValueOutOfRange`] if `value >= b^d` (or `b^d`
    /// overflows `u128` and cannot be checked — spaces that large should use
    /// [`IdSpace::random_id`] or [`IdSpace::id_from_hash`] instead).
    pub fn id_from_value(&self, value: u128) -> Result<NodeId, IdError> {
        if let Some(cap) = self.capacity() {
            if value >= cap {
                return Err(IdError::ValueOutOfRange { value });
            }
        }
        let mut digits = vec![0u8; self.digit_count()];
        let mut v = value;
        for d in digits.iter_mut() {
            *d = (v % self.base as u128) as u8;
            v /= self.base as u128;
        }
        if v != 0 {
            return Err(IdError::ValueOutOfRange { value });
        }
        Ok(NodeId::from_digits_lsd(&digits))
    }

    /// Draws a uniformly random identifier.
    pub fn random_id<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let mut digits = [0u8; MAX_DIGITS];
        for d in digits.iter_mut().take(self.digit_count()) {
            *d = rng.gen_range(0..self.base) as u8;
        }
        NodeId::from_digits_lsd(&digits[..self.digit_count()])
    }

    /// Derives an identifier from arbitrary bytes via SHA-1, the hash the
    /// paper suggests for generating node identifiers.
    ///
    /// For power-of-two bases, digits are taken directly from the hash's bit
    /// stream; otherwise each digit is the next hash byte reduced mod `b`
    /// (re-hashing to extend the stream when `d` digits need more than 20
    /// bytes). The tiny modulo bias for non-power-of-two bases is irrelevant
    /// for routing-table balance.
    pub fn id_from_hash(&self, data: &[u8]) -> NodeId {
        let mut digits = Vec::with_capacity(self.digit_count());
        let mut block = crate::sha1(data);
        let mut used = 0usize;

        if self.base.is_power_of_two() {
            let bits_per_digit = self.base.trailing_zeros() as usize;
            let mut bitbuf: u32 = 0;
            let mut bitcnt = 0usize;
            while digits.len() < self.digit_count() {
                if bitcnt < bits_per_digit {
                    if used == block.len() {
                        block = crate::sha1(&block);
                        used = 0;
                    }
                    bitbuf = (bitbuf << 8) | block[used] as u32;
                    used += 1;
                    bitcnt += 8;
                } else {
                    let shift = bitcnt - bits_per_digit;
                    let digit = ((bitbuf >> shift) & (self.base as u32 - 1)) as u8;
                    bitcnt = shift;
                    bitbuf &= (1u32 << shift) - 1;
                    digits.push(digit);
                }
            }
        } else {
            while digits.len() < self.digit_count() {
                if used == block.len() {
                    block = crate::sha1(&block);
                    used = 0;
                }
                digits.push((block[used] as u16 % self.base) as u8);
                used += 1;
            }
        }
        NodeId::from_digits_lsd(&digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_parameters() {
        assert!(IdSpace::new(16, 8).is_ok());
        assert_eq!(IdSpace::new(1, 8), Err(IdError::InvalidBase(1)));
        assert_eq!(IdSpace::new(37, 8), Err(IdError::InvalidBase(37)));
        assert_eq!(IdSpace::new(16, 0), Err(IdError::InvalidDigitCount(0)));
        assert_eq!(
            IdSpace::new(16, MAX_DIGITS + 1),
            Err(IdError::InvalidDigitCount(MAX_DIGITS + 1))
        );
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let space = IdSpace::new(4, 5).unwrap();
        let x = space.parse_id("21233").unwrap();
        assert_eq!(x.to_string(), "21233");
        assert!(space.contains(&x));

        let hexspace = IdSpace::new(16, 8).unwrap();
        let y = hexspace.parse_id("00f3a9b2").unwrap();
        assert_eq!(y.to_string(), "00f3a9b2");
        assert_eq!(y.digit(0), 0x2);
        assert_eq!(y.digit(7), 0x0);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let space = IdSpace::new(4, 5).unwrap();
        assert!(matches!(
            space.parse_id("2123"),
            Err(IdError::WrongLength {
                expected: 5,
                found: 4
            })
        ));
        assert!(matches!(
            space.parse_id("21243"),
            Err(IdError::InvalidDigit { ch: '4', .. })
        ));
        assert!(matches!(
            space.parse_id("2123!"),
            Err(IdError::InvalidDigit { ch: '!', .. })
        ));
    }

    #[test]
    fn parse_suffix_handles_empty_and_long() {
        let space = IdSpace::new(8, 5).unwrap();
        assert_eq!(space.parse_suffix("").unwrap(), Suffix::empty());
        assert_eq!(space.parse_suffix("261").unwrap().to_string(), "261");
        assert!(space.parse_suffix("123456").is_err());
    }

    #[test]
    fn value_roundtrip() {
        let space = IdSpace::new(7, 6).unwrap();
        for v in [0u128, 1, 6, 7, 48, 117648] {
            let id = space.id_from_value(v).unwrap();
            assert_eq!(id.to_value(7), Some(v));
        }
        let cap = space.capacity().unwrap();
        assert_eq!(cap, 117_649);
        assert!(space.id_from_value(cap).is_err());
    }

    #[test]
    fn random_ids_are_in_space_and_deterministic() {
        let space = IdSpace::new(16, 40).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = space.random_id(&mut a);
            let y = space.random_id(&mut b);
            assert_eq!(x, y);
            assert!(space.contains(&x));
        }
    }

    #[test]
    fn random_ids_cover_digit_values() {
        // Sanity check of uniformity: with 4000 draws of d=8 b=16 digits,
        // every digit value should appear in every position.
        let space = IdSpace::new(16, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [[false; 16]; 8];
        for _ in 0..4000 {
            let id = space.random_id(&mut rng);
            for (i, &d) in id.digits_lsd().iter().enumerate() {
                seen[i][d as usize] = true;
            }
        }
        assert!(seen.iter().all(|row| row.iter().all(|&s| s)));
    }

    #[test]
    fn hash_ids_are_deterministic_and_valid() {
        for (b, d) in [(16u16, 40usize), (16, 8), (8, 5), (4, 5), (10, 20), (3, 64)] {
            let space = IdSpace::new(b, d).unwrap();
            let x = space.id_from_hash(b"node-0");
            let y = space.id_from_hash(b"node-0");
            let z = space.id_from_hash(b"node-1");
            assert_eq!(x, y);
            assert_ne!(x, z, "b={b} d={d}");
            assert!(space.contains(&x));
            assert!(space.contains(&z));
        }
    }

    #[test]
    fn hash_ids_use_full_hash_stream() {
        // d=64 base-16 digits need 32 bytes, more than one SHA-1 output; the
        // extension path must still be deterministic and in-range.
        let space = IdSpace::new(16, 64).unwrap();
        let x = space.id_from_hash(b"needs two blocks");
        assert!(space.contains(&x));
        assert_eq!(x, space.id_from_hash(b"needs two blocks"));
    }
}
