use std::fmt;
use std::hash::{Hash, Hasher};

use crate::{NodeId, MAX_DIGITS};

/// A digit string `ω` interpreted as an identifier *suffix*.
///
/// Suffixes are the currency of the paper's C-set machinery: suffix sets
/// `V_ω`, C-sets `C_{l·ω}`, and notification sets are all indexed by
/// suffixes. Like [`NodeId`], digits are stored rightmost-first, so
/// `digits_lsd()[0]` is the last digit of the suffix.
///
/// The paper writes `j ∘ ω` for digit `j` concatenated on the *left* of
/// suffix `ω`; that operation is [`Suffix::extend_left`].
///
/// # Examples
///
/// ```
/// use hyperring_id::{IdSpace, Suffix};
/// let space = IdSpace::new(8, 5)?;
/// let x = space.parse_id("10261")?;
/// let w = x.suffix(2); // "61"
/// assert_eq!(w.to_string(), "61");
/// let lw = w.extend_left(2); // "261"
/// assert!(x.has_suffix(&lw));
/// # Ok::<(), hyperring_id::IdError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Suffix {
    len: u8,
    digits: [u8; MAX_DIGITS],
}

impl Suffix {
    /// The empty suffix (every identifier has it).
    pub fn empty() -> Self {
        Suffix {
            len: 0,
            digits: [0u8; MAX_DIGITS],
        }
    }

    /// Creates a suffix from digits given rightmost-first.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_DIGITS`] digits are given.
    pub fn from_digits_lsd(digits: &[u8]) -> Self {
        assert!(
            digits.len() <= MAX_DIGITS,
            "suffix length {} exceeds {}",
            digits.len(),
            MAX_DIGITS
        );
        let mut buf = [0u8; MAX_DIGITS];
        buf[..digits.len()].copy_from_slice(digits);
        Suffix {
            len: digits.len() as u8,
            digits: buf,
        }
    }

    /// Number of digits in the suffix (the paper's `|ω|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this is the empty suffix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Digits in rightmost-first order.
    #[inline]
    pub fn digits_lsd(&self) -> &[u8] {
        &self.digits[..self.len as usize]
    }

    /// The `i`-th digit from the right.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn digit(&self, i: usize) -> u8 {
        assert!(i < self.len as usize, "suffix digit index {i} out of range");
        self.digits[i]
    }

    /// The paper's `j ∘ ω`: digit `j` concatenated on the left.
    ///
    /// # Panics
    ///
    /// Panics if the suffix is already [`MAX_DIGITS`] long.
    pub fn extend_left(&self, j: u8) -> Suffix {
        assert!(
            (self.len as usize) < MAX_DIGITS,
            "cannot extend a suffix of maximum length"
        );
        let mut out = *self;
        out.digits[out.len as usize] = j;
        out.len += 1;
        out
    }

    /// Drops the leftmost digit, yielding the parent suffix in a C-set tree.
    ///
    /// Returns `None` for the empty suffix.
    pub fn parent(&self) -> Option<Suffix> {
        if self.len == 0 {
            None
        } else {
            Some(Suffix::from_digits_lsd(
                &self.digits[..self.len as usize - 1],
            ))
        }
    }

    /// Whether `other` is a suffix of `self` (i.e. `self` ends with `other`).
    pub fn ends_with(&self, other: &Suffix) -> bool {
        other.len <= self.len && self.digits[..other.len as usize] == *other.digits_lsd()
    }

    /// Whether the given identifier ends with this suffix.
    #[inline]
    pub fn matches(&self, id: &NodeId) -> bool {
        id.has_suffix(self)
    }
}

impl Default for Suffix {
    fn default() -> Self {
        Suffix::empty()
    }
}

impl PartialEq for Suffix {
    fn eq(&self, other: &Self) -> bool {
        self.digits_lsd() == other.digits_lsd()
    }
}

impl Eq for Suffix {}

impl Hash for Suffix {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.digits_lsd().hash(state);
    }
}

impl PartialOrd for Suffix {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Suffix {
    /// Orders by length, then right-to-left digit order; a total order good
    /// enough for deterministic iteration of suffix-keyed maps.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.digits_lsd().cmp(other.digits_lsd()))
    }
}

impl fmt::Display for Suffix {
    /// Prints digits most-significant first; the empty suffix prints as `ε`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in (0..self.len as usize).rev() {
            let d = self.digits[i];
            let ch = match d {
                0..=9 => (b'0' + d) as char,
                10..=35 => (b'a' + (d - 10)) as char,
                _ => '?',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Suffix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Suffix({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sfx(digits_msd: &[u8]) -> Suffix {
        let lsd: Vec<u8> = digits_msd.iter().rev().copied().collect();
        Suffix::from_digits_lsd(&lsd)
    }

    #[test]
    fn extend_left_builds_cset_suffixes() {
        // Paper Figure 2: V_1 -> C_61 -> C_261 -> C_0261 -> C_10261.
        let s1 = sfx(&[1]);
        let s61 = s1.extend_left(6);
        let s261 = s61.extend_left(2);
        let s0261 = s261.extend_left(0);
        let s10261 = s0261.extend_left(1);
        assert_eq!(s61.to_string(), "61");
        assert_eq!(s261.to_string(), "261");
        assert_eq!(s0261.to_string(), "0261");
        assert_eq!(s10261.to_string(), "10261");
        assert_eq!(s10261.len(), 5);
    }

    #[test]
    fn parent_inverts_extend_left() {
        let s = sfx(&[2, 6, 1]);
        assert_eq!(s.extend_left(0).parent(), Some(s));
        assert_eq!(Suffix::empty().parent(), None);
        assert_eq!(sfx(&[7]).parent(), Some(Suffix::empty()));
    }

    #[test]
    fn ends_with_is_reflexive_and_respects_nesting() {
        let long = sfx(&[0, 2, 6, 1]);
        let short = sfx(&[6, 1]);
        assert!(long.ends_with(&short));
        assert!(long.ends_with(&long));
        assert!(long.ends_with(&Suffix::empty()));
        assert!(!short.ends_with(&long));
        assert!(!long.ends_with(&sfx(&[5, 1])));
    }

    #[test]
    fn empty_suffix_displays_epsilon() {
        assert_eq!(Suffix::empty().to_string(), "ε");
        assert!(Suffix::empty().is_empty());
        assert_eq!(Suffix::default(), Suffix::empty());
    }

    #[test]
    fn matches_ids() {
        let x = crate::NodeId::from_digits_lsd(&[1, 6, 2, 0, 1]); // "10261"
        assert!(sfx(&[2, 6, 1]).matches(&x));
        assert!(!sfx(&[0, 6, 1]).matches(&x));
    }
}
