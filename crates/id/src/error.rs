use std::error::Error;
use std::fmt;

/// Errors produced when constructing identifier spaces or parsing identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IdError {
    /// The base `b` is outside the supported range `2..=36`.
    InvalidBase(u16),
    /// The digit count `d` is outside the supported range `1..=MAX_DIGITS`.
    InvalidDigitCount(usize),
    /// A parsed string had the wrong number of digits for the space.
    WrongLength {
        /// Number of digits the space expects.
        expected: usize,
        /// Number of digits found in the input.
        found: usize,
    },
    /// A character could not be interpreted as a digit in the space's base.
    InvalidDigit {
        /// The offending character.
        ch: char,
        /// The base of the space.
        base: u16,
    },
    /// A raw digit value was `>= base`.
    DigitOutOfRange {
        /// The offending digit value.
        digit: u8,
        /// The base of the space.
        base: u16,
    },
    /// An integer value does not fit in the identifier space.
    ValueOutOfRange {
        /// The offending value.
        value: u128,
    },
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdError::InvalidBase(b) => write!(f, "base {b} is not in 2..=36"),
            IdError::InvalidDigitCount(d) => {
                write!(f, "digit count {d} is not in 1..={}", crate::MAX_DIGITS)
            }
            IdError::WrongLength { expected, found } => {
                write!(f, "expected {expected} digits, found {found}")
            }
            IdError::InvalidDigit { ch, base } => {
                write!(f, "character {ch:?} is not a digit in base {base}")
            }
            IdError::DigitOutOfRange { digit, base } => {
                write!(f, "digit value {digit} is not less than base {base}")
            }
            IdError::ValueOutOfRange { value } => {
                write!(f, "value {value} does not fit in the identifier space")
            }
        }
    }
}

impl Error for IdError {}
