//! Property-based tests of the C-set tree machinery: template structure
//! invariants and grouping laws, over random identifier populations.

use hyperring_cset::{dependency_groups, notify_set, notify_suffix, tree_groups, CsetTemplate};
use hyperring_id::{IdSpace, NodeId, Suffix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `n` members and `m` joiners, shrinking the request when the
/// identifier space is too small to hold `n + m` distinct ids (tiny b^d
/// combinations are otherwise an infinite rejection loop).
fn population(
    b: u16,
    d: usize,
    n: usize,
    m: usize,
    seed: u64,
) -> (IdSpace, Vec<NodeId>, Vec<NodeId>) {
    let space = IdSpace::new(b, d).unwrap();
    let cap = space.capacity().unwrap_or(u128::MAX);
    let mut n = n;
    let mut m = m;
    while (n + m) as u128 * 2 > cap {
        if m > 1 {
            m -= 1;
        } else if n > 1 {
            n -= 1;
        } else {
            break;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n + m {
        set.insert(space.random_id(&mut rng));
    }
    let ids: Vec<NodeId> = set.into_iter().collect();
    (space, ids[..n].to_vec(), ids[n..].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn notify_suffix_is_maximal(
        b in 2u16..=8, d in 3usize..=8, n in 1usize..=20, seed in 0u64..10_000,
    ) {
        let (_space, v, w) = population(b, d, n, 1, seed);
        let x = w[0];
        let (s, set) = notify_set(&v, &x);
        // The suffix belongs to x.
        prop_assert!(x.has_suffix(&s));
        // Everyone in the set carries it; nobody carries anything longer.
        prop_assert!(!set.is_empty() || s.is_empty());
        for y in &v {
            if y.has_suffix(&s) {
                prop_assert!(set.contains(y));
            }
            prop_assert!(y.csuf_len(&x) <= s.len());
        }
    }

    #[test]
    fn template_is_the_suffix_trie_of_w(
        b in 2u16..=8, d in 3usize..=8, n in 1usize..=10, m in 1usize..=10, seed in 0u64..10_000,
    ) {
        let (space, v, w) = population(b, d, n, m, seed);
        for (root, group) in tree_groups(&v, &w) {
            let t = CsetTemplate::build(space, root, &group);
            // Every joiner's full identifier is a leaf.
            for x in &group {
                let leaf = x.suffix(d);
                prop_assert!(t.csets().any(|s| *s == leaf), "missing leaf for {}", x);
                prop_assert!(t.children(&leaf).is_empty());
                // The path has exactly d − |root| C-sets, ending above root.
                let path = t.path_to_root(x);
                prop_assert_eq!(path.len(), d - root.len());
                for s in &path {
                    prop_assert!(x.has_suffix(s));
                }
            }
            // Every C-set's suffix is carried by at least one joiner, and
            // its parent chain stays in the tree (or is the root).
            for s in t.csets() {
                prop_assert!(group.iter().any(|x| x.has_suffix(s)));
                let p = s.parent().unwrap();
                prop_assert!(p == root || t.csets().any(|c| *c == p));
                // Siblings share the parent but differ.
                for sib in t.siblings(s) {
                    prop_assert_ne!(&sib, s);
                    prop_assert_eq!(sib.parent().unwrap(), p);
                }
            }
            // Tree size is bounded by |group| · (d − |root|).
            prop_assert!(t.len() <= group.len() * (d - root.len()));
        }
    }

    #[test]
    fn tree_groups_partition_w(
        b in 2u16..=8, d in 3usize..=8, n in 1usize..=10, m in 1usize..=12, seed in 0u64..10_000,
    ) {
        let (_space, v, w) = population(b, d, n, m, seed);
        let groups = tree_groups(&v, &w);
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        prop_assert_eq!(total, w.len());
        // Within a group, all joiners share the root suffix; across groups
        // the suffixes differ.
        let mut roots: Vec<Suffix> = Vec::new();
        for (root, g) in &groups {
            prop_assert!(!roots.contains(root));
            roots.push(*root);
            for x in g {
                prop_assert_eq!(notify_suffix(&v, x), *root);
            }
        }
    }

    #[test]
    fn dependency_groups_refine_into_tree_groups(
        b in 2u16..=4, d in 3usize..=6, n in 1usize..=8, m in 1usize..=10, seed in 0u64..10_000,
    ) {
        let (_space, v, w) = population(b, d, n, m, seed);
        let deps = dependency_groups(&v, &w);
        let total: usize = deps.iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, w.len());
        // Joiners with the same notify suffix always land in the same
        // dependency group (same tree ⇒ dependent).
        for (root, g) in tree_groups(&v, &w) {
            let holder = deps.iter().position(|dg| dg.contains(&g[0])).unwrap();
            for x in &g {
                prop_assert!(
                    deps[holder].contains(x),
                    "tree V_{} split across dependency groups",
                    root
                );
            }
        }
    }
}
