//! C-set trees — the paper's conceptual foundation (§3, §5.1) made
//! executable.
//!
//! The paper reasons about multiple concurrent joins through *C-set trees*:
//! given a consistent network `V` and joiners `W` that share a notification
//! set `V_ω`, the *tree template* `C(V, W)` (Definition 3.9) fixes which
//! C-sets must exist, and the *realized tree* `cset(V, W)` (Definition 5.1)
//! is read off the final neighbor tables. Consistency after the joins is
//! equivalent to the three conditions of §3.3:
//!
//! 1. `cset(V, W)` has the template's structure and no C-set is empty;
//! 2. every node of `V_ω` stores a node of each child C-set of the root;
//! 3. every joiner stores a node of each sibling C-set along its
//!    root-to-leaf path.
//!
//! The paper stresses that C-set trees are "conceptual structures … *not
//! implemented* in any node" — accordingly, this crate never touches
//! protocol state; it only *analyzes* identifier sets and finished tables,
//! and is used by the test suite to verify the propositions of §5.1 on real
//! runs.
//!
//! # Examples
//!
//! The paper's Figure 2 (b = 8, d = 5):
//!
//! ```
//! use hyperring_cset::{notify_suffix, CsetTemplate};
//! use hyperring_id::IdSpace;
//!
//! let space = IdSpace::new(8, 5)?;
//! let v: Vec<_> = ["72430", "10353", "62332", "13141", "31701"]
//!     .iter().map(|s| space.parse_id(s).unwrap()).collect();
//! let w: Vec<_> = ["10261", "47051", "00261"]
//!     .iter().map(|s| space.parse_id(s).unwrap()).collect();
//!
//! // All three joiners notify V_1 (suffix "1").
//! for x in &w {
//!     assert_eq!(notify_suffix(&v, x).to_string(), "1");
//! }
//! let t = CsetTemplate::build(space, space.parse_suffix("1")?, &w);
//! // The template has exactly the C-sets of Figure 2(b), level by level.
//! let names: Vec<String> = t.csets().map(|s| s.to_string()).collect();
//! assert_eq!(names, ["51", "61", "051", "261", "7051", "0261", "47051", "00261", "10261"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod groups;
mod realized;
mod template;

pub use groups::{dependency_groups, notify_set, notify_suffix, tree_groups};
pub use realized::{check_conditions, CsetConditionViolation, RealizedCset};
pub use template::CsetTemplate;
