use std::collections::BTreeMap;

use hyperring_id::{IdSpace, NodeId, Suffix};

/// The C-set tree template `C(V, W)` of Definition 3.9.
///
/// Given the root suffix `ω` (the joiners' common notification suffix) and
/// the joiner set `W`, the template is the trie of all suffixes `l_j…l_1∘ω`
/// for which `W_{l_j…l_1∘ω} ≠ ∅`. The root `V_ω` is not itself a C-set.
///
/// The template is *determined* by `V` and `W` — realizations may differ in
/// which nodes fill each C-set, but never in shape.
#[derive(Debug, Clone)]
pub struct CsetTemplate {
    space: IdSpace,
    root: Suffix,
    /// All C-set suffixes, breadth-first (shorter first), each level in
    /// `Suffix` order.
    csets: Vec<Suffix>,
    /// Children of the root and of each C-set.
    children: BTreeMap<Suffix, Vec<Suffix>>,
}

impl CsetTemplate {
    /// Builds the template for joiners `w` whose common notification suffix
    /// is `root`.
    ///
    /// # Panics
    ///
    /// Panics if some joiner does not carry the suffix `root` (it would
    /// belong to a different C-set tree).
    pub fn build(space: IdSpace, root: Suffix, w: &[NodeId]) -> Self {
        let mut csets: Vec<Suffix> = Vec::new();
        let mut children: BTreeMap<Suffix, Vec<Suffix>> = BTreeMap::new();
        for k in root.len() + 1..=space.digit_count() {
            let mut level: Vec<Suffix> = Vec::new();
            for x in w {
                assert!(
                    x.has_suffix(&root),
                    "joiner {x} lacks the tree's root suffix {root}"
                );
                let s = x.suffix(k);
                if !level.contains(&s) {
                    level.push(s);
                }
            }
            level.sort();
            for s in &level {
                let parent = s.parent().expect("non-empty C-set suffix");
                children.entry(parent).or_default().push(*s);
            }
            csets.extend(level);
        }
        // Children were inserted in sorted order per level already.
        CsetTemplate {
            space,
            root,
            csets,
            children,
        }
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The root suffix `ω` (the root `V_ω` is not a C-set).
    pub fn root(&self) -> Suffix {
        self.root
    }

    /// All C-set suffixes, breadth-first.
    pub fn csets(&self) -> impl Iterator<Item = &Suffix> {
        self.csets.iter()
    }

    /// Number of C-sets in the template.
    pub fn len(&self) -> usize {
        self.csets.len()
    }

    /// Whether the template has no C-sets (i.e. `W` was empty).
    pub fn is_empty(&self) -> bool {
        self.csets.is_empty()
    }

    /// Children of `node` (`node` may be the root suffix or any C-set).
    pub fn children(&self, node: &Suffix) -> &[Suffix] {
        self.children.get(node).map_or(&[], |v| v.as_slice())
    }

    /// Siblings of C-set `node`: the other children of its parent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root (it has no parent).
    pub fn siblings(&self, node: &Suffix) -> Vec<Suffix> {
        let parent = node.parent().expect("root has no siblings");
        self.children(&parent)
            .iter()
            .filter(|s| *s != node)
            .copied()
            .collect()
    }

    /// The path of C-sets from the leaf with suffix = `x`'s identifier up
    /// to (excluding) the root, leaf first.
    ///
    /// # Panics
    ///
    /// Panics if `x` lacks the root suffix.
    pub fn path_to_root(&self, x: &NodeId) -> Vec<Suffix> {
        assert!(x.has_suffix(&self.root), "{x} not in this tree");
        (self.root.len() + 1..=self.space.digit_count())
            .rev()
            .map(|k| x.suffix(k))
            .collect()
    }

    /// Renders the tree as indented text (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = format!("V_{}\n", self.root);
        let mut stack: Vec<(Suffix, usize)> = self
            .children(&self.root)
            .iter()
            .rev()
            .map(|s| (*s, 1))
            .collect();
        while let Some((s, depth)) = stack.pop() {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("C_{s}\n"));
            for c in self.children(&s).iter().rev() {
                stack.push((*c, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (IdSpace, Suffix, Vec<NodeId>) {
        let space = IdSpace::new(8, 5).unwrap();
        let w = ["10261", "47051", "00261"]
            .iter()
            .map(|s| space.parse_id(s).unwrap())
            .collect();
        (space, space.parse_suffix("1").unwrap(), w)
    }

    #[test]
    fn figure_2b_structure() {
        let (space, root, w) = paper_setup();
        let t = CsetTemplate::build(space, root, &w);
        assert_eq!(t.len(), 9);
        assert_eq!(t.root().to_string(), "1");

        let kids: Vec<String> = t.children(&root).iter().map(|s| s.to_string()).collect();
        assert_eq!(kids, vec!["51", "61"]);

        let c61 = space.parse_suffix("61").unwrap();
        let kids: Vec<String> = t.children(&c61).iter().map(|s| s.to_string()).collect();
        assert_eq!(kids, vec!["261"]);

        let c0261 = space.parse_suffix("0261").unwrap();
        let kids: Vec<String> = t.children(&c0261).iter().map(|s| s.to_string()).collect();
        assert_eq!(kids, vec!["00261", "10261"]);

        // Leaves have no children.
        let leaf = space.parse_suffix("47051").unwrap();
        assert!(t.children(&leaf).is_empty());
    }

    #[test]
    fn siblings_match_figure_2() {
        // From C_00261's path: siblings are C_10261 (at level 5) and C_51
        // (at level 2) — the paper's footnote 7 example.
        let (space, root, w) = paper_setup();
        let t = CsetTemplate::build(space, root, &w);
        let x = space.parse_id("00261").unwrap();
        let path = t.path_to_root(&x);
        assert_eq!(
            path.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            vec!["00261", "0261", "261", "61"]
        );
        let mut sibs: Vec<String> = path
            .iter()
            .flat_map(|s| t.siblings(s))
            .map(|s| s.to_string())
            .collect();
        sibs.sort();
        assert_eq!(sibs, vec!["10261", "51"]);
    }

    #[test]
    fn single_joiner_template_is_a_path() {
        let space = IdSpace::new(4, 4).unwrap();
        let x = space.parse_id("3210").unwrap();
        let root = Suffix::empty();
        let t = CsetTemplate::build(space, root, &[x]);
        assert_eq!(t.len(), 4);
        let names: Vec<String> = t.csets().map(|s| s.to_string()).collect();
        assert_eq!(names, vec!["0", "10", "210", "3210"]);
        assert!(t.siblings(&space.parse_suffix("10").unwrap()).is_empty());
    }

    #[test]
    fn empty_w_gives_empty_template() {
        let space = IdSpace::new(4, 4).unwrap();
        let t = CsetTemplate::build(space, Suffix::empty(), &[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn render_shows_hierarchy() {
        let (space, root, w) = paper_setup();
        let t = CsetTemplate::build(space, root, &w);
        let s = t.render();
        assert!(s.starts_with("V_1\n"));
        assert!(s.contains("C_61"));
        assert!(s.contains("      C_0261"));
    }

    #[test]
    #[should_panic(expected = "lacks the tree's root suffix")]
    fn wrong_tree_membership_panics() {
        let space = IdSpace::new(8, 5).unwrap();
        let root = space.parse_suffix("1").unwrap();
        let outsider = space.parse_id("67320").unwrap();
        CsetTemplate::build(space, root, &[outsider]);
    }
}
