use hyperring_id::{NodeId, Suffix};

/// The suffix `ω` of the notification set `V_ω = V^Notify_x` of joiner `x`
/// with respect to the member set `v` (Definition 3.4).
///
/// `ω` is the longest suffix of `x` that some member shares; when no member
/// shares even the last digit, `ω` is the empty suffix and the notification
/// set is all of `V`.
///
/// # Panics
///
/// Panics if `v` is empty (a joiner always knows a non-empty network) or if
/// `x` is itself a member (its notification set would be ill-defined).
pub fn notify_suffix(v: &[NodeId], x: &NodeId) -> Suffix {
    assert!(!v.is_empty(), "notification set of an empty network");
    let k = v
        .iter()
        .map(|y| {
            assert_ne!(y, x, "joiner {x} is already a member");
            x.csuf_len(y)
        })
        .max()
        .expect("non-empty V");
    x.suffix(k)
}

/// The notification set itself: the members sharing [`notify_suffix`] with
/// `x`, i.e. `V^Notify_x` (Definition 3.4).
///
/// # Examples
///
/// ```
/// use hyperring_cset::notify_set;
/// use hyperring_id::IdSpace;
/// let space = IdSpace::new(8, 5)?;
/// let v: Vec<_> = ["72430", "13141", "31701"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let (suffix, set) = notify_set(&v, &space.parse_id("10261")?);
/// assert_eq!(suffix.to_string(), "1");
/// assert_eq!(set.len(), 2); // 13141 and 31701 end in 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// As for [`notify_suffix`].
pub fn notify_set(v: &[NodeId], x: &NodeId) -> (Suffix, Vec<NodeId>) {
    let s = notify_suffix(v, x);
    let set = v.iter().filter(|y| y.has_suffix(&s)).copied().collect();
    (s, set)
}

/// Partitions joiners into C-set-tree groups: joiners with the same
/// notification set belong to the same tree (§3.3). Returns
/// `(root suffix, joiners)` pairs sorted by suffix.
///
/// # Panics
///
/// As for [`notify_suffix`].
pub fn tree_groups(v: &[NodeId], w: &[NodeId]) -> Vec<(Suffix, Vec<NodeId>)> {
    let mut map: std::collections::BTreeMap<Suffix, Vec<NodeId>> = Default::default();
    for x in w {
        map.entry(notify_suffix(v, x)).or_default().push(*x);
    }
    map.into_iter().collect()
}

/// Partitions joiners into *dependency groups* following the construction
/// in the paper's proof of Lemma 5.5: two joiners are grouped together when
/// their notification sets intersect, or when both notification sets are
/// contained in a third joiner's notification set; groups are closed
/// transitively. Joins in different groups are mutually independent
/// (Definition 3.5).
///
/// # Panics
///
/// As for [`notify_suffix`].
pub fn dependency_groups(v: &[NodeId], w: &[NodeId]) -> Vec<Vec<NodeId>> {
    let suffixes: Vec<Suffix> = w.iter().map(|x| notify_suffix(v, x)).collect();
    // V_ω1 ∩ V_ω2 ≠ ∅ iff one suffix extends the other (both sets are
    // non-empty suffix sets of V). The "contained in a third" clause is
    // subsumed: containment also requires suffix extension, so relate pairs
    // through the third joiner transitively via union-find.
    let n = w.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (&suffixes[i], &suffixes[j]);
            if a.ends_with(b) || b.ends_with(a) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> = Default::default();
    for (i, &x) in w.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(x);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_id::IdSpace;

    fn ids(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
        ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
    }

    #[test]
    fn paper_example_notify_sets() {
        // §3.3: W = {10261, 00261, 67320, 11445} against the Figure 2 V.
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, &["72430", "10353", "62332", "13141", "31701"]);
        let x = space.parse_id("10261").unwrap();
        let (s, set) = notify_set(&v, &x);
        assert_eq!(s.to_string(), "1");
        // V_1 = {13141, 31701}.
        assert_eq!(
            set.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
            vec!["13141", "31701"]
        );
        assert_eq!(
            notify_suffix(&v, &space.parse_id("00261").unwrap()).to_string(),
            "1"
        );
        assert_eq!(
            notify_suffix(&v, &space.parse_id("67320").unwrap()).to_string(),
            "0"
        );
        // 11445: no member ends in 5 ⇒ noti-set is V (empty suffix).
        let (s, set) = notify_set(&v, &space.parse_id("11445").unwrap());
        assert!(s.is_empty());
        assert_eq!(set.len(), v.len());
    }

    #[test]
    fn tree_groups_split_by_suffix() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, &["72430", "10353", "62332", "13141", "31701"]);
        let w = ids(space, &["10261", "00261", "67320", "11445"]);
        let groups = tree_groups(&v, &w);
        assert_eq!(groups.len(), 3);
        let by_suffix: Vec<(String, usize)> = groups
            .iter()
            .map(|(s, g)| (s.to_string(), g.len()))
            .collect();
        assert!(by_suffix.contains(&("1".into(), 2)));
        assert!(by_suffix.contains(&("0".into(), 1)));
        assert!(by_suffix.contains(&("ε".into(), 1)));
    }

    #[test]
    fn dependency_groups_merge_nested_suffixes() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, &["72430", "10353", "62332", "13141", "31701"]);
        // 10261 notifies V_1; 11445 notifies V (empty suffix) ⊇ V_1:
        // dependent. 67320 notifies V_0 ⊂ V: also dependent through 11445.
        let w = ids(space, &["10261", "67320", "11445"]);
        let groups = dependency_groups(&v, &w);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn disjoint_notify_sets_are_independent() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, &["72430", "10353", "62332", "13141", "31701"]);
        // Suffixes "1" and "0" are disjoint suffix sets.
        let w = ids(space, &["10261", "67320"]);
        let groups = dependency_groups(&v, &w);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn member_joiner_rejected() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, &["72430"]);
        notify_suffix(&v, &v[0].clone());
    }
}
