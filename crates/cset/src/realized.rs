use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use hyperring_core::NeighborTable;
use hyperring_id::{NodeId, Suffix};

use crate::CsetTemplate;

/// The realized C-set tree `cset(V, W)` of Definition 5.1, computed from a
/// snapshot of neighbor tables (normally taken at `t_e`, the end of all
/// joins).
#[derive(Debug, Clone)]
pub struct RealizedCset {
    root: Suffix,
    root_members: Vec<NodeId>,
    sets: BTreeMap<Suffix, BTreeSet<NodeId>>,
}

impl RealizedCset {
    /// Reads the realized tree off the final tables.
    ///
    /// `lookup` must resolve the table of every node in `v` and of every
    /// node placed in a C-set (all are in `v ∪ w`).
    ///
    /// # Panics
    ///
    /// Panics if `lookup` fails for a required node.
    pub fn compute<'a, F>(
        template: &CsetTemplate,
        v: &[NodeId],
        w: &[NodeId],
        mut lookup: F,
    ) -> Self
    where
        F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
    {
        let root = template.root();
        let root_members: Vec<NodeId> = v.iter().filter(|y| y.has_suffix(&root)).copied().collect();
        let w_set: BTreeSet<NodeId> = w.iter().copied().collect();
        let mut sets: BTreeMap<Suffix, BTreeSet<NodeId>> = BTreeMap::new();

        // Template C-sets are stored breadth-first, so parents are computed
        // before children.
        for cset in template.csets() {
            let level = cset.len() - 1;
            let digit = cset.digit(level);
            let parent = cset.parent().expect("C-set suffix is non-empty");
            let parent_nodes: Vec<NodeId> = if parent == root {
                root_members.clone()
            } else {
                sets.get(&parent).into_iter().flatten().copied().collect()
            };
            let mut members = BTreeSet::new();
            for u in parent_nodes {
                let table = lookup(&u).unwrap_or_else(|| panic!("no table for {u}"));
                if let Some(e) = table.get(level, digit) {
                    // Definition 5.1 restricts members to W with the C-set's
                    // suffix.
                    if w_set.contains(&e.node) && e.node.has_suffix(cset) {
                        members.insert(e.node);
                    }
                }
            }
            sets.insert(*cset, members);
        }
        RealizedCset {
            root,
            root_members,
            sets,
        }
    }

    /// The root suffix `ω`.
    pub fn root(&self) -> Suffix {
        self.root
    }

    /// The members of the root `V_ω`.
    pub fn root_members(&self) -> &[NodeId] {
        &self.root_members
    }

    /// The members of C-set `s` (empty when `s` is not in the tree).
    pub fn members(&self, s: &Suffix) -> impl Iterator<Item = &NodeId> {
        self.sets.get(s).into_iter().flatten()
    }

    /// Number of C-sets computed.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the realized tree has no C-sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// All `(suffix, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Suffix, &BTreeSet<NodeId>)> {
        self.sets.iter()
    }
}

/// A violation of the §3.3 end-of-join conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsetConditionViolation {
    /// Condition (1): a template C-set realized empty.
    EmptyCset {
        /// The empty C-set's suffix.
        cset: Suffix,
    },
    /// Condition (2): a root member stores no node of a child C-set.
    RootMemberMissesChild {
        /// The member of `V_ω`.
        member: NodeId,
        /// The child C-set whose suffix the member should store.
        cset: Suffix,
    },
    /// Condition (3): a joiner stores no node of a sibling C-set on its
    /// root path.
    JoinerMissesSibling {
        /// The joiner.
        joiner: NodeId,
        /// The sibling C-set whose suffix the joiner should store.
        sibling: Suffix,
    },
}

impl fmt::Display for CsetConditionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsetConditionViolation::EmptyCset { cset } => {
                write!(f, "condition (1): C_{cset} is empty")
            }
            CsetConditionViolation::RootMemberMissesChild { member, cset } => {
                write!(f, "condition (2): {member} stores no node of C_{cset}")
            }
            CsetConditionViolation::JoinerMissesSibling { joiner, sibling } => {
                write!(
                    f,
                    "condition (3): {joiner} stores no node of sibling C_{sibling}"
                )
            }
        }
    }
}

/// Checks the three conditions of §3.3 that, together with each joiner's
/// copying phase, make the network consistent at the end of the joins.
///
/// Returns all violations (empty means the conditions hold).
///
/// # Panics
///
/// Panics if `lookup` fails for a node of `v ∪ w`.
pub fn check_conditions<'a, F>(
    template: &CsetTemplate,
    realized: &RealizedCset,
    w: &[NodeId],
    mut lookup: F,
) -> Vec<CsetConditionViolation>
where
    F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
{
    let mut out = Vec::new();

    // Condition (1): every template C-set is realized non-empty.
    for cset in template.csets() {
        if realized.members(cset).next().is_none() {
            out.push(CsetConditionViolation::EmptyCset { cset: *cset });
        }
    }

    // Condition (2): each root member stores a node with each child
    // C-set's suffix.
    for y in realized.root_members() {
        let table = lookup(y).unwrap_or_else(|| panic!("no table for {y}"));
        for child in template.children(&template.root()) {
            let level = child.len() - 1;
            let digit = child.digit(level);
            let ok = table
                .get(level, digit)
                .is_some_and(|e| e.node.has_suffix(child));
            if !ok {
                out.push(CsetConditionViolation::RootMemberMissesChild {
                    member: *y,
                    cset: *child,
                });
            }
        }
    }

    // Condition (3): each joiner stores a node of every sibling C-set on
    // its path to the root.
    for x in w {
        let table = lookup(x).unwrap_or_else(|| panic!("no table for {x}"));
        for cset in template.path_to_root(x) {
            for sibling in template.siblings(&cset) {
                let level = sibling.len() - 1;
                let digit = sibling.digit(level);
                let ok = table
                    .get(level, digit)
                    .is_some_and(|e| e.node.has_suffix(&sibling));
                if !ok {
                    out.push(CsetConditionViolation::JoinerMissesSibling {
                        joiner: *x,
                        sibling,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::SimNetworkBuilder;
    use hyperring_id::IdSpace;
    use hyperring_sim::UniformDelay;
    use std::collections::HashMap;

    /// Runs the paper's Figure 2 scenario and returns (v, w, tables).
    fn run_paper_scenario(seed: u64) -> (Vec<NodeId>, Vec<NodeId>, HashMap<NodeId, NeighborTable>) {
        let space = IdSpace::new(8, 5).unwrap();
        let v: Vec<NodeId> = ["72430", "10353", "62332", "13141", "31701"]
            .iter()
            .map(|s| space.parse_id(s).unwrap())
            .collect();
        let w: Vec<NodeId> = ["10261", "47051", "00261"]
            .iter()
            .map(|s| space.parse_id(s).unwrap())
            .collect();
        let mut b = SimNetworkBuilder::new(space);
        for id in &v {
            b.add_member(*id);
        }
        for id in &w {
            b.add_joiner(*id, v[0], 0);
        }
        let mut net = b.build(UniformDelay::new(500, 90_000), seed);
        net.run();
        assert!(net.all_in_system());
        let tables = net.tables().into_iter().map(|t| (t.owner(), t)).collect();
        (v, w, tables)
    }

    #[test]
    fn realized_tree_satisfies_all_conditions_across_seeds() {
        let space = IdSpace::new(8, 5).unwrap();
        let root = space.parse_suffix("1").unwrap();
        for seed in 0..10 {
            let (v, w, tables) = run_paper_scenario(seed);
            let template = CsetTemplate::build(space, root, &w);
            let realized = RealizedCset::compute(&template, &v, &w, |id| tables.get(id));
            let violations = check_conditions(&template, &realized, &w, |id| tables.get(id));
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            // The leaves contain exactly the joiners (condition (1)
            // corollary: union of C-sets is W).
            for x in &w {
                let leaf = x.suffix(5);
                let members: Vec<&NodeId> = realized.members(&leaf).collect();
                assert_eq!(members, vec![x], "seed {seed}");
            }
        }
    }

    #[test]
    fn root_members_are_v_omega() {
        let space = IdSpace::new(8, 5).unwrap();
        let root = space.parse_suffix("1").unwrap();
        let (v, w, tables) = run_paper_scenario(3);
        let template = CsetTemplate::build(space, root, &w);
        let realized = RealizedCset::compute(&template, &v, &w, |id| tables.get(id));
        let names: Vec<String> = realized
            .root_members()
            .iter()
            .map(|n| n.to_string())
            .collect();
        assert_eq!(names, vec!["13141", "31701"]);
        assert_eq!(realized.len(), template.len());
        assert!(!realized.is_empty());
    }

    #[test]
    fn sabotaged_tables_fail_conditions() {
        let space = IdSpace::new(8, 5).unwrap();
        let root = space.parse_suffix("1").unwrap();
        let (v, w, mut tables) = run_paper_scenario(5);
        let template = CsetTemplate::build(space, root, &w);
        // Blank the (1, 6)-entries of all V_1 members: C_61 realizes empty.
        for y in ["13141", "31701"] {
            let y = space.parse_id(y).unwrap();
            tables.get_mut(&y).unwrap().clear(1, 6);
        }
        let realized = RealizedCset::compute(&template, &v, &w, |id| tables.get(id));
        let violations = check_conditions(&template, &realized, &w, |id| tables.get(id));
        assert!(violations
            .iter()
            .any(|v| matches!(v, CsetConditionViolation::EmptyCset { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, CsetConditionViolation::RootMemberMissesChild { .. })));
    }

    #[test]
    fn violation_display_is_readable() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = CsetConditionViolation::EmptyCset {
            cset: space.parse_suffix("61").unwrap(),
        };
        assert_eq!(v.to_string(), "condition (1): C_61 is empty");
    }
}
