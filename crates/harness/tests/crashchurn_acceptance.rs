//! Acceptance test of the crash-churn subsystem at the scale the
//! experiment ships with: a 64-node deterministic simulation crashing 20%
//! of the `in_system` nodes mid-run.
//!
//! * detector + repair on → the survivors converge back to
//!   Definition-3.8 consistency (checker restricted to survivors);
//! * the control run with repair disabled stays inconsistent;
//! * the protocol-trace digest is byte-identical across reruns of the
//!   same seed (the runs are fully deterministic).

use hyperring_harness::experiments::{run_crashchurn, CrashChurnConfig};

#[test]
fn sixty_four_nodes_twenty_percent_crash() {
    let cfg = CrashChurnConfig::default();
    assert_eq!(cfg.members, 64);
    assert_eq!(cfg.crashes(), 13, "20% of 64, rounded up");

    let repaired = run_crashchurn(&cfg, 2003, true);
    assert_eq!(repaired.crashed, 13);
    assert_eq!(repaired.survivors, 51);
    assert_eq!(
        repaired.dead_refs, 0,
        "a survivor still stores a crashed node"
    );
    assert!(
        repaired.consistent,
        "survivors inconsistent with repair on: {} violations ({} false negatives)",
        repaired.violations, repaired.false_negatives
    );

    let control = run_crashchurn(&cfg, 2003, false);
    assert_eq!(control.dead_refs, 0, "eviction must not depend on repair");
    assert!(
        !control.consistent && control.false_negatives > 0,
        "disabling repair should leave the vacated slots empty"
    );

    let rerun = run_crashchurn(&cfg, 2003, true);
    assert_eq!(repaired, rerun, "same seed must reproduce every metric");
    assert!(repaired.traced > 0);
    assert_eq!(
        repaired.trace_digest, rerun.trace_digest,
        "trace digest must be byte-stable per seed"
    );
    assert_ne!(
        repaired.trace_digest,
        run_crashchurn(&cfg, 2004, true).trace_digest,
        "digest must actually depend on the run"
    );
}
