//! Golden determinism tests for the timeline scenario runner: a pinned
//! canonical schedule — joins, a crash wave, a graceful leave, a
//! checkpoint, and a lookup storm — must reproduce exactly the trace
//! digest and headline counters recorded when the DSL landed. Any drift
//! means a change to the compiler, the runner, or the protocol altered
//! scheduled behavior, not just internals.
//!
//! Run with `GOLDEN_PRINT=1 cargo test -p hyperring-harness --test
//! timeline_golden -- --nocapture` to print the observed values when
//! (deliberately) re-recording.

use hyperring_core::{FailureDetector, ProtocolOptions, RetryPolicy};
use hyperring_harness::{Timeline, TimelineScenario};
use hyperring_id::IdSpace;

/// The canonical schedule: 24 members, 3 joiners at t = 0, a 20% crash
/// wave at 2 s, one graceful leave at 4 s, a checkpoint at 8 s, a
/// 32-lookup storm at 10 s, horizon 14 s.
fn canonical() -> Timeline {
    Timeline::new()
        .at(0)
        .join(3)
        .at(2_000_000)
        .crash(0.2)
        .at(4_000_000)
        .leave(1)
        .at(8_000_000)
        .checkpoint("settled")
        .at(10_000_000)
        .lookup_storm(32)
        .horizon(14_000_000)
}

fn scenario() -> TimelineScenario {
    TimelineScenario::new(IdSpace::new(4, 6).unwrap())
        .members(24)
        .seed(4242)
        .options(
            ProtocolOptions::new()
                .with_failure_detector(FailureDetector {
                    probe_interval_us: 100_000,
                    suspicion_threshold: 3,
                    repair: true,
                    max_repairs_in_flight: 4,
                    repair_backoff: true,
                })
                .with_retry(RetryPolicy {
                    timeout_us: 300_000,
                    max_retries: 2,
                    backoff_pct: 200,
                    jitter_pct: 10,
                    join_fallback: true,
                    ..RetryPolicy::default()
                }),
        )
}

/// The canonical schedule's pinned outcome.
#[test]
fn canonical_timeline_matches_golden() {
    let r = scenario().run(canonical());
    let observed = (
        r.crashed,
        r.left,
        r.survivors,
        r.consistent,
        r.dead_refs,
        r.traced,
        r.trace_digest,
    );
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "canonical: ({}, {}, {}, {}, {}, {}, 0x{:016x})",
            observed.0, observed.1, observed.2, observed.3, observed.4, observed.5, observed.6
        );
        return;
    }
    let golden = (5, 1, 21, true, 0, 414, 0xe189_60b9_c0f7_372c);
    assert_eq!(
        observed, golden,
        "canonical timeline drifted from the recorded golden run"
    );
    let ck = &r.checkpoints[0];
    assert!(
        ck.consistent,
        "settled checkpoint saw {} violations",
        ck.violations
    );
    let storm = &r.storms[0];
    assert_eq!(
        storm.delivered, storm.lookups,
        "storm lost lookups on the settled network"
    );
}

/// Checkpoints and storms pause the simulator to inspect state; the
/// compiled schedule with them present must leave the protocol's own
/// event stream byte-identical to the same schedule without them.
#[test]
fn observation_events_do_not_perturb_the_golden_run() {
    let with_obs = scenario().run(canonical());
    let without_obs = scenario().run(
        Timeline::new()
            .at(0)
            .join(3)
            .at(2_000_000)
            .crash(0.2)
            .at(4_000_000)
            .leave(1)
            .horizon(14_000_000),
    );
    assert_eq!(with_obs.trace_digest, without_obs.trace_digest);
    assert_eq!(with_obs.delivered, without_obs.delivered);
    assert_eq!(with_obs.timers_fired, without_obs.timers_fired);
    assert_eq!(with_obs.finished_at, without_obs.finished_at);
}
