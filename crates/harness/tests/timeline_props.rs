//! Property tests of the timeline scenario runner: *random* seeded
//! timelines — population size, join count, crash wave size and instant
//! all drawn by proptest — must always settle to survivor-restricted
//! Definition-3.8 consistency once the schedule quiesces and the
//! hardened repair path has run its course; and retry backoff must be
//! inert on lossless runs (it only reshapes timers that never fire).

use hyperring_core::{FailureDetector, ProtocolOptions, RetryPolicy};
use hyperring_harness::{Timeline, TimelineScenario};
use hyperring_id::IdSpace;
use proptest::prelude::*;

/// The hardened repair/fallback options the Poisson-churn experiment
/// runs with: detector + repair on, bounded in-flight repair queries,
/// exponential re-query pacing, a churn-sized retry budget, and the
/// join gateway fallback.
fn hardened() -> ProtocolOptions {
    ProtocolOptions::new()
        .with_failure_detector(FailureDetector {
            probe_interval_us: 100_000,
            suspicion_threshold: 3,
            repair: true,
            max_repairs_in_flight: 4,
            repair_backoff: true,
        })
        .with_retry(RetryPolicy {
            timeout_us: 300_000,
            max_retries: 2,
            backoff_pct: 200,
            jitter_pct: 10,
            join_fallback: true,
            ..RetryPolicy::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random join-then-crash timelines: joiners start at t = 0, a crash
    /// wave lands somewhere in [1.5 s, 3 s] while late joins may still be
    /// in flight, and after quiescence the survivors must be consistent
    /// with zero dead references — no strand, no stale entry, regardless
    /// of the draw.
    #[test]
    fn random_timelines_settle_consistent(
        seed in 0u64..100_000,
        members in 10usize..16,
        joins in 0usize..4,
        crashes in 1usize..4,
        crash_at in 1_500_000u64..3_000_000,
    ) {
        let crashes = crashes.min(members / 4);
        let tl = Timeline::new()
            .at(0)
            .join(joins)
            .at(crash_at)
            .crash_count(crashes)
            .horizon(14_000_000);
        let r = TimelineScenario::new(IdSpace::new(4, 6).unwrap())
            .members(members)
            .seed(seed)
            .options(hardened())
            .run(tl);
        prop_assert_eq!(r.crashed, crashes);
        prop_assert_eq!(r.survivors, members + joins - crashes);
        prop_assert_eq!(
            r.dead_refs, 0,
            "a survivor still stores a crashed node (seed {})", seed
        );
        prop_assert!(
            r.consistent,
            "survivors inconsistent after quiescence (seed {}, {} violations, {} false negatives)",
            seed, r.violations, r.false_negatives
        );
    }

    /// Retry backoff and jitter only reshape the reply-awaiting timers,
    /// and on a lossless run no reply-awaiting timer ever fires — so a
    /// join-only timeline must produce a bit-identical protocol trace
    /// with backoff cranked all the way up or left at the default.
    #[test]
    fn backoff_is_inert_without_loss(
        seed in 0u64..100_000,
        members in 10usize..20,
        joins in 1usize..5,
    ) {
        let space = IdSpace::new(4, 6).unwrap();
        let run = |retry: RetryPolicy| {
            let tl = Timeline::new().at(0).join(joins).horizon(10_000_000);
            TimelineScenario::new(space)
                .members(members)
                .seed(seed)
                .options(ProtocolOptions::new().with_retry(retry))
                .run(tl)
        };
        let plain = run(RetryPolicy::default());
        let backed = run(RetryPolicy {
            backoff_pct: 300,
            jitter_pct: 25,
            ..RetryPolicy::default()
        });
        prop_assert_eq!(plain.survivors, members + joins);
        prop_assert_eq!(
            plain.trace_digest, backed.trace_digest,
            "backoff perturbed a lossless run (seed {})", seed
        );
        prop_assert_eq!(plain.delivered, backed.delivered);
        prop_assert_eq!(plain.finished_at, backed.finished_at);
    }
}
