//! Experiment harness: workloads, topology-backed delay models, the
//! unified [`Scenario`] runner, experiment drivers for every table/figure
//! of the paper's evaluation, the optimistic-join baseline, and
//! plain-text/CSV reporting.
//!
//! Binaries (run with `--release`; each also writes CSV under `results/`):
//!
//! * `fig15a` — Theorem-5 bound vs `n` (Figure 15(a));
//! * `fig15b` — simulated CDF of `JoinNotiMsg` per join plus the §5.2
//!   averages table (Figure 15(b)); `--small` for a quick run;
//! * `theorem3` — max `CpRstMsg + JoinWaitMsg` vs the `d + 1` bound;
//! * `theorem4` — measured single-join cost vs the closed form;
//! * `ablation_msgsize` — §6.2 payload reductions;
//! * `bootstrap` — §6.1 network initialization;
//! * `baseline_consistency` — optimistic joins vs the paper's protocol;
//! * `faultsim` — concurrent joins over a lossy network (`FaultyDelay`),
//!   recovered by `RetryPolicy` timer retransmission; supports `--trace`;
//! * `crashchurn` — crash-failure churn: nodes die silently mid-run, the
//!   failure detector evicts them, and suffix-routed repair re-converges
//!   the survivors; includes a repair-off control arm.
//!
//! # Examples
//!
//! ```
//! use hyperring_harness::experiments::{run_fig15b, Fig15bConfig};
//! let r = run_fig15b(&Fig15bConfig::small(8, 1));
//! assert!(r.consistent);
//! assert!(r.max_cprst_joinwait <= r.theorem3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod experiments;
pub mod lookup;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod timeline;
pub mod topo_delay;
pub mod workload;

pub use cli::TrialOpts;
pub use lookup::{
    run_schedule, storm_keys, DelayFn, LoadStats, LookupStats, StormSchedule, StretchSummary, Zipf,
};
pub use report::Table;
pub use scenario::{RunReport, Scenario};
pub use timeline::{
    Action, At, CheckpointReport, CompiledTimeline, KeyedStormReport, StormReport, Timeline,
    TimelineReport, TimelineScenario,
};
pub use topo_delay::{CachedTopologyDelay, SharedTopology, TopologyDelay};
pub use workload::{distinct_ids, run_trials, run_trials_sequential, trial_seed, JoinWorkload};
