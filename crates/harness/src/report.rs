//! Plain-text tables and CSV output for experiment results.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple fixed-width ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Display, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", csv_line(&self.header))?;
        for row in &self.rows {
            writeln!(f, "{}", csv_line(row))?;
        }
        Ok(())
    }
}

/// Renders an `(x, y)` series as a fixed-size ASCII line/step chart —
/// enough to eyeball Figure 15's shapes in a terminal.
///
/// `height` rows by `width` columns; x is mapped linearly over its range,
/// y likewise. Intended for monotone or slowly-varying series (bounds
/// curves, CDFs).
///
/// # Panics
///
/// Panics if `points` is empty or `width`/`height` are below 2.
pub fn ascii_chart(points: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(!points.is_empty(), "nothing to plot");
    assert!(width >= 2 && height >= 2, "chart too small");
    let (xmin, xmax) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (ymin, ymax) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    let xspan = (xmax - xmin).max(f64::MIN_POSITIVE);
    let yspan = (ymax - ymin).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in points {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = b'*';
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:>10.3} ┤"));
    for (r, row) in grid.iter().enumerate() {
        if r > 0 {
            out.push_str(&format!("{:>10} ┤", ""));
        }
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!("{ymin:>10.3} └{}\n", "─".repeat(width)));
    out.push_str(&format!(
        "{:>11} {:<width$.0}{:>}\n",
        "",
        xmin,
        format!("{xmax:.0}"),
        width = width.saturating_sub(format!("{xmax:.0}").len())
    ));
    out
}

/// Writes the table as CSV, printing a confirmation or a warning — the
/// convenience wrapper used by the experiment binaries.
pub fn write_csv_or_warn(table: &Table, path: &Path) {
    match table.write_csv(path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["n", "bound"]);
        t.row([10.to_string(), "8.001".into()]);
        t.row([100_000.to_string(), "6.4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("bound"));
        assert!(lines[3].contains("100000"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(
            csv_line(&["a,b".into(), "c\"d".into()]),
            "\"a,b\",\"c\"\"d\""
        );
        assert_eq!(csv_line(&["plain".into()]), "plain");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("hyperring-report-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn ascii_chart_places_extremes() {
        let pts: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = ascii_chart(&pts, 40, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 8 + 2);
        // Max label on the first row, min label on the axis row.
        assert!(lines[0].trim_start().starts_with("100.000"));
        assert!(lines[8].trim_start().starts_with("0.000"));
        // The top row holds the rightmost point; the bottom data row the
        // leftmost.
        assert!(lines[0].trim_end().ends_with('*'));
        assert!(lines[7].contains('*'));
        assert_eq!(s.matches('*').count(), 11 - 2 + 2); // some rows merge
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn ascii_chart_rejects_empty() {
        ascii_chart(&[], 10, 5);
    }

    #[test]
    fn ascii_chart_flat_series() {
        // Constant y must not divide by zero.
        let pts = vec![(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let s = ascii_chart(&pts, 10, 4);
        assert!(s.contains('*'));
    }
}
