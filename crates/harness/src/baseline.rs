//! The *optimistic join* baseline.
//!
//! §1 of the paper contrasts its join protocol with Pastry's optimistic
//! approach to concurrent joins ("the authors believe 'contention' to be
//! rare") and notes that SPRR raised — but did not address — the
//! consistency of tables under concurrent joins. This module implements
//! such an optimistic join, modeled on Pastry's: the joiner copies tables
//! level by level along a chain (as in the paper's *copying* phase), then
//! announces itself **once** to every node in its new table and declares
//! itself joined. There is no `T`/`S` state, no `JoinWaitMsg` arbitration,
//! no delayed reply from still-joining nodes, no reply-driven traversal of
//! the notification set, and no `SpeNotiMsg` repair.
//!
//! The announce round does elicit one reply carrying the receiver's table
//! (which the joiner absorbs to improve *its own* entries — Pastry's
//! joiner also receives state from its contacts), but nobody forwards
//! announcements. Real Pastry additionally maintains *leaf sets* that
//! paper over routing-table gaps; this baseline isolates exactly the
//! neighbor-table consistency question the paper studies.
//!
//! Expected outcome (and what the tests pin down): violations occur even
//! under light load whenever the notification set has members the copied
//! tables do not expose, and the violation count grows with the number of
//! *concurrent* dependent joins — while the paper's protocol stays at zero
//! violations in every run.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use hyperring_core::{Entry, NeighborTable, NodeState, TableSnapshot};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::{Actor, Context, Simulator, Time, UniformDelay};

use crate::scenario::{RunReport, Scenario};
use crate::workload::JoinWorkload;

#[allow(deprecated)]
pub use crate::scenario::BaselineResult;

/// Messages of the optimistic protocol.
#[derive(Debug, Clone)]
enum OptMsg {
    Start {
        gateway: NodeId,
    },
    CpRst {
        level: u8,
        from: NodeId,
    },
    CpRly {
        level: u8,
        table: TableSnapshot,
    },
    /// One-shot announcement of the joiner (with its table).
    Announce {
        table: TableSnapshot,
    },
    /// Single reply to an announcement, carrying the receiver's table.
    AnnounceRly {
        table: TableSnapshot,
    },
}

#[derive(Debug, PartialEq, Eq)]
enum OptStatus {
    Copying,
    Done,
}

/// One optimistic node.
#[derive(Debug)]
struct OptNode {
    space: IdSpace,
    id: NodeId,
    table: NeighborTable,
    status: OptStatus,
    copy_level: usize,
    dir: Arc<HashMap<NodeId, usize>>,
}

impl OptNode {
    fn fill_if_empty(&mut self, node: NodeId) {
        if node == self.id {
            return;
        }
        let k = self.id.csuf_len(&node);
        if self.table.get(k, node.digit(k)).is_none() {
            self.table.set(
                k,
                node.digit(k),
                Entry {
                    node,
                    state: NodeState::S, // the optimistic protocol has no states
                },
            );
        }
    }

    /// Fills empty entries from a snapshot. Never triggers further
    /// messages — the optimistic protocol has no transitive repair.
    fn absorb(&mut self, table: &TableSnapshot) {
        for row in table.rows().to_vec() {
            let u = row.entry.node;
            if u != self.id {
                self.fill_if_empty(u);
            }
        }
    }
}

impl Actor for OptNode {
    type Msg = OptMsg;
    type Timer = ();

    fn on_message(&mut self, ctx: &mut Context<'_, OptMsg>, _from: usize, msg: OptMsg) {
        let mut out: Vec<(NodeId, OptMsg)> = Vec::new();
        match msg {
            OptMsg::Start { gateway } => {
                out.push((
                    gateway,
                    OptMsg::CpRst {
                        level: 0,
                        from: self.id,
                    },
                ));
            }
            OptMsg::CpRst { level, from } => {
                out.push((
                    from,
                    OptMsg::CpRly {
                        level,
                        table: self.table.snapshot(),
                    },
                ));
            }
            OptMsg::CpRly { level, table } => {
                if self.status != OptStatus::Copying || level as usize != self.copy_level {
                    return;
                }
                let i = self.copy_level;
                for row in table.rows().iter().filter(|r| r.level as usize == i) {
                    if self.table.get(i, row.digit).is_none() && row.entry.node != self.id {
                        self.table.set(i, row.digit, row.entry);
                    }
                }
                let next = table.get(i, self.id.digit(i));
                self.copy_level += 1;
                match next {
                    Some(e) if self.copy_level < self.space.digit_count() => {
                        out.push((
                            e.node,
                            OptMsg::CpRst {
                                level: self.copy_level as u8,
                                from: self.id,
                            },
                        ));
                    }
                    _ => {
                        // Copying done: install self entries, announce once
                        // to every node in the table, declare victory
                        // immediately (the optimism).
                        let me = self.id;
                        for l in 0..self.space.digit_count() {
                            self.table.set(
                                l,
                                me.digit(l),
                                Entry {
                                    node: me,
                                    state: NodeState::S,
                                },
                            );
                        }
                        self.status = OptStatus::Done;
                        let snap = self.table.snapshot();
                        let targets: BTreeSet<NodeId> = snap
                            .rows()
                            .iter()
                            .map(|r| r.entry.node)
                            .filter(|u| *u != me)
                            .collect();
                        for u in targets {
                            out.push((
                                u,
                                OptMsg::Announce {
                                    table: snap.clone(),
                                },
                            ));
                        }
                    }
                }
            }
            OptMsg::Announce { table } => {
                let from = table.owner();
                self.fill_if_empty(from);
                self.absorb(&table);
                out.push((
                    from,
                    OptMsg::AnnounceRly {
                        table: self.table.snapshot(),
                    },
                ));
            }
            OptMsg::AnnounceRly { table } => {
                self.absorb(&table);
            }
        }
        for (to, msg) in out {
            if let Some(&idx) = self.dir.get(&to) {
                ctx.send(idx, msg);
            }
        }
    }
}

/// Runs the optimistic baseline to quiescence and returns the final
/// tables. This is the backend behind [`Scenario::optimistic`]; use the
/// builder unless you need the raw tables.
///
/// Joins start `gap_us` apart (0 = all concurrent at t = 0; a large gap
/// approximates sequential joins, since a join completes within a handful
/// of 100 ms round trips). Message delays are uniform in `delay_bounds`
/// microseconds.
pub(crate) fn run_optimistic_tables(
    workload: &JoinWorkload,
    seed: u64,
    gap_us: Time,
    delay_bounds: (Time, Time),
) -> Vec<NeighborTable> {
    let space = workload.space;
    let member_tables = hyperring_core::build_consistent_tables(space, &workload.members);
    let mut ids: Vec<NodeId> = workload.members.clone();
    ids.extend(workload.joiners.iter().map(|(id, _)| *id));
    let dir: Arc<HashMap<NodeId, usize>> =
        Arc::new(ids.iter().enumerate().map(|(i, id)| (*id, i)).collect());

    let mut actors: Vec<OptNode> = member_tables
        .into_iter()
        .map(|t| OptNode {
            space,
            id: t.owner(),
            table: t,
            status: OptStatus::Done,
            copy_level: 0,
            dir: Arc::clone(&dir),
        })
        .collect();
    for (id, _) in &workload.joiners {
        actors.push(OptNode {
            space,
            id: *id,
            table: NeighborTable::new(space, *id),
            status: OptStatus::Copying,
            copy_level: 0,
            dir: Arc::clone(&dir),
        });
    }
    let (lo, hi) = delay_bounds;
    let mut sim = Simulator::new(actors, UniformDelay::new(lo, hi), seed);
    for (i, (id, gw)) in workload.joiners.iter().enumerate() {
        let idx = dir[id];
        sim.inject_at(i as Time * gap_us, idx, idx, OptMsg::Start { gateway: *gw });
    }
    let report = sim.run_limited(200_000_000);
    assert!(!report.truncated, "optimistic run did not quiesce");
    sim.actors().map(|a| a.table.clone()).collect()
}

/// Runs the optimistic baseline: joins start `gap_us` apart (0 = all
/// concurrent at t = 0; a large gap approximates sequential joins, since
/// a join completes within a handful of 100 ms round trips).
#[deprecated(note = "use `Scenario::new(space).workload(w).optimistic().run_sim()`")]
pub fn run_optimistic(workload: &JoinWorkload, seed: u64, gap_us: Time) -> RunReport {
    Scenario::new(workload.space)
        .workload(workload.clone())
        .seed(seed)
        .join_gap_us(gap_us)
        .optimistic()
        .run_sim()
}

/// Runs the same workload under the paper's protocol, producing the same
/// metrics (expected: zero violations, always).
#[deprecated(note = "use `Scenario::new(space).workload(w).run_sim()`")]
pub fn run_paper_protocol(workload: &JoinWorkload, seed: u64) -> RunReport {
    Scenario::new(workload.space)
        .workload(workload.clone())
        .seed(seed)
        .run_sim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_id::IdSpace;

    /// Large-gap starts: joins are effectively sequential (a join finishes
    /// within ~1 s of simulated time; the gap is 60 s).
    const SEQ_GAP: Time = 60_000_000;

    fn optimistic(w: &JoinWorkload, seed: u64, gap_us: Time) -> RunReport {
        Scenario::new(w.space)
            .workload(w.clone())
            .seed(seed)
            .join_gap_us(gap_us)
            .optimistic()
            .run_sim()
    }

    #[test]
    fn paper_protocol_never_breaks() {
        let space = IdSpace::new(8, 4).unwrap();
        for seed in 0..5 {
            let w = JoinWorkload::generate(space, 24, 24, seed);
            let r = Scenario::new(space).workload(w).seed(seed).run_sim();
            assert!(r.consistent(), "seed {seed}: {}", r.report);
            assert_eq!(r.unreachable_pairs, 0);
        }
    }

    #[test]
    fn concurrent_optimistic_joins_break() {
        // Dense dependence: small base, deep ids, many simultaneous joins.
        let space = IdSpace::new(4, 6).unwrap();
        let mut broke = 0;
        let mut total_fns = 0;
        for seed in 0..10 {
            let w = JoinWorkload::generate(space, 16, 48, seed);
            let r = optimistic(&w, seed, 0);
            if !r.consistent() {
                broke += 1;
                total_fns += r.false_negatives;
            }
        }
        assert!(
            broke > 0,
            "optimistic join survived 10 seeds of heavy concurrency"
        );
        assert!(total_fns > 0);
    }

    #[test]
    fn concurrency_hurts_more_than_sequential() {
        // The same workloads run (a) all-concurrent and (b) spaced out;
        // aggregate violations must be worse (or at least no better) when
        // concurrent, and the concurrent runs must break somewhere.
        let space = IdSpace::new(4, 6).unwrap();
        let mut concurrent = 0usize;
        let mut sequential = 0usize;
        for seed in 0..8 {
            let w = JoinWorkload::generate(space, 16, 32, seed);
            concurrent += optimistic(&w, seed, 0).report.violations().len();
            sequential += optimistic(&w, seed, SEQ_GAP).report.violations().len();
        }
        assert!(
            concurrent >= sequential,
            "concurrent {concurrent} < sequential {sequential}"
        );
        assert!(concurrent > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_run() {
        let space = IdSpace::new(8, 4).unwrap();
        let w = JoinWorkload::generate(space, 10, 4, 1);
        let r: BaselineResult = run_paper_protocol(&w, 1);
        assert!(r.consistent());
        let r = run_optimistic(&w, 1, SEQ_GAP);
        assert_eq!(r.joiners, 4);
    }
}
