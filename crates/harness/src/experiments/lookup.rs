//! Heavy-traffic lookup storms over a bootstrapped network on a
//! transit-stub topology (extension; the paper's P2 locality property
//! under load): two arms — paper-faithful tables vs proximity-aware
//! adaptive tables — replay the **identical** compiled storm schedules
//! and report latency stretch, hop counts, and per-node load imbalance
//! side by side.
//!
//! The adaptive arm stays inside Definition 3.8 by construction: the
//! proximity fill and the demand-driven promotion both swap only among
//! suffix-equivalent candidates, so consistency (and therefore unique
//! object roots) is untouched — neighbor choice is a pure performance
//! knob.

use std::collections::HashMap;

use hyperring_core::{
    build_consistent_tables, build_proximate_tables_sampled, promote_secondaries, tables_digest,
    DemandProfile, NeighborTable,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_object::ObjectStore;
use hyperring_topology::TransitStubConfig;

use crate::lookup::{run_schedule, storm_keys, LookupStats, StormSchedule};
use crate::topo_delay::TopologyDelay;
use crate::workload::distinct_ids;

/// Parameters of one lookup-storm comparison.
#[derive(Debug, Clone)]
pub struct LookupStormConfig {
    /// Digit base.
    pub b: u16,
    /// Digits per identifier.
    pub d: usize,
    /// Overlay nodes.
    pub n: usize,
    /// Distinct object keys.
    pub keys: usize,
    /// Lookups per storm (each arm runs a uniform and a Zipf storm of
    /// this size).
    pub lookups: usize,
    /// Zipf exponent of the skewed storm.
    pub zipf_exponent: f64,
    /// Use the paper's full 8320-router topology instead of the small
    /// test topology.
    pub paper_topology: bool,
    /// Minimum observed slot traffic before the adaptive arm promotes a
    /// demand-observed secondary neighbor.
    pub promote_min_traffic: u64,
    /// Candidates each slot probes at fill time in the adaptive arm
    /// (bounded knowledge; the omniscient argmin would leave promotion
    /// nothing to do).
    pub proximity_sample: usize,
    /// Base seed (topology, membership, and storm schedules all derive
    /// from it).
    pub seed: u64,
}

impl LookupStormConfig {
    /// A small-topology configuration sized for tests and `--smoke` runs.
    pub fn small(n: usize, seed: u64) -> Self {
        LookupStormConfig {
            b: 16,
            d: 6,
            n,
            keys: 64,
            lookups: 2_000,
            zipf_exponent: 0.9,
            paper_topology: false,
            promote_min_traffic: 4,
            proximity_sample: 3,
            seed,
        }
    }
}

/// One arm of the comparison: a table-construction policy measured under
/// both storm distributions.
#[derive(Debug, Clone)]
pub struct LookupArm {
    /// Arm label (`"baseline"` or `"adaptive"`).
    pub name: &'static str,
    /// Stats of the uniform-popularity storm.
    pub uniform: LookupStats,
    /// Stats of the Zipf-popularity storm.
    pub zipf: LookupStats,
    /// Secondary-neighbor promotions the arm applied before measuring
    /// (always 0 for the baseline arm).
    pub promoted: usize,
    /// Digest of the arm's tables at measurement time — pinned by the
    /// determinism golden, and equal before/after the measured storms
    /// (storms never perturb tables).
    pub tables_digest: u64,
}

/// Result of [`run_lookup_storm`]: both arms over identical schedules.
#[derive(Debug, Clone)]
pub struct LookupStormResult {
    /// Overlay size.
    pub n: usize,
    /// Paper-faithful oracle tables.
    pub baseline: LookupArm,
    /// Proximity-built tables plus demand-driven promotion.
    pub adaptive: LookupArm,
}

fn measure_arm(
    name: &'static str,
    space: IdSpace,
    tables: &[NeighborTable],
    schedules: &[&StormSchedule; 2],
    latency: &dyn Fn(&NodeId, &NodeId) -> u64,
    promoted: usize,
) -> LookupArm {
    let store = ObjectStore::over(space, tables);
    let uniform = run_schedule(&store, schedules[0], Some(latency), None);
    let zipf = run_schedule(&store, schedules[1], Some(latency), None);
    LookupArm {
        name,
        uniform,
        zipf,
        promoted,
        tables_digest: tables_digest(tables),
    }
}

/// Runs the lookup-storm comparison: one membership, one topology, one
/// pair of compiled schedules (uniform and Zipf) — replayed verbatim over
/// both arms' tables.
///
/// The adaptive arm first builds proximity-aware tables, then replays the
/// same schedules once **unmeasured** to fill a [`DemandProfile`], promotes
/// demand-observed secondary neighbors that are strictly closer, and only
/// then measures.
///
/// # Panics
///
/// Panics on degenerate parameters (empty network, zero keys/lookups).
pub fn run_lookup_storm(cfg: &LookupStormConfig) -> LookupStormResult {
    let space = IdSpace::new(cfg.b, cfg.d).expect("valid space");
    let ids = distinct_ids(space, cfg.n, cfg.seed);
    let topo_cfg = if cfg.paper_topology {
        TransitStubConfig::paper_8320()
    } else {
        TransitStubConfig::small()
    };
    let topo = TopologyDelay::generate(&topo_cfg, cfg.n, cfg.seed ^ 0x50f7);
    let host_of: HashMap<NodeId, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    // Exact direct delays, all sources at once (one multi-source Dijkstra
    // batch instead of n² pairwise decompositions).
    let all: Vec<usize> = (0..cfg.n).collect();
    let rows = topo.topology().host_direct_rows(topo.hosts(), &all);
    let latency = move |a: &NodeId, b: &NodeId| -> u64 { rows[host_of[a]][host_of[b]] };

    let keys = storm_keys(space, "storm-key", cfg.keys);
    let uniform =
        StormSchedule::compile(ids.clone(), keys.clone(), cfg.lookups, 0.0, cfg.seed ^ 0x11);
    let zipf = StormSchedule::compile(
        ids.clone(),
        keys,
        cfg.lookups,
        cfg.zipf_exponent,
        cfg.seed ^ 0x22,
    );
    let schedules = [&uniform, &zipf];

    let baseline_tables = build_consistent_tables(space, &ids);
    let baseline = measure_arm("baseline", space, &baseline_tables, &schedules, &latency, 0);

    let mut adaptive_tables = build_proximate_tables_sampled(
        space,
        &ids,
        &latency,
        cfg.proximity_sample,
        cfg.seed ^ 0x77,
    );
    // Warmup: replay the identical schedules unmeasured, recording demand.
    let mut demand = DemandProfile::new();
    {
        let store = ObjectStore::over(space, &adaptive_tables);
        for s in schedules {
            let _ = run_schedule(&store, s, None, Some(&mut demand));
        }
    }
    let promo = promote_secondaries(
        &mut adaptive_tables,
        &demand,
        &latency,
        cfg.promote_min_traffic,
    );
    let adaptive = measure_arm(
        "adaptive",
        space,
        &adaptive_tables,
        &schedules,
        &latency,
        promo.promoted,
    );

    LookupStormResult {
        n: cfg.n,
        baseline,
        adaptive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_arm_beats_baseline_stretch_on_identical_schedules() {
        let r = run_lookup_storm(&LookupStormConfig::small(128, 7));
        let base = r.baseline.zipf.stretch.unwrap();
        let adap = r.adaptive.zipf.stretch.unwrap();
        assert!(base.mean >= 1.0 && adap.mean >= 1.0);
        assert!(
            adap.mean < base.mean,
            "adaptive did not reduce zipf stretch: {} -> {}",
            base.mean,
            adap.mean
        );
        let base_u = r.baseline.uniform.stretch.unwrap();
        let adap_u = r.adaptive.uniform.stretch.unwrap();
        assert!(
            adap_u.mean < base_u.mean,
            "adaptive did not reduce uniform stretch: {} -> {}",
            base_u.mean,
            adap_u.mean
        );
        // Same schedules: both arms routed the same lookup count, and
        // hop-exactness (suffix routing) keeps hops within d either way.
        assert_eq!(r.baseline.zipf.lookups, r.adaptive.zipf.lookups);
        assert!(r.adaptive.promoted > 0, "demand promotion never fired");
    }

    #[test]
    fn storms_leave_both_arms_tables_unperturbed() {
        let cfg = LookupStormConfig::small(64, 3);
        let space = IdSpace::new(cfg.b, cfg.d).unwrap();
        let ids = distinct_ids(space, cfg.n, cfg.seed);
        let baseline = build_consistent_tables(space, &ids);
        let digest = tables_digest(&baseline);
        let r = run_lookup_storm(&cfg);
        // The measured baseline tables are exactly the oracle tables —
        // running two storms over them changed nothing.
        assert_eq!(r.baseline.tables_digest, digest);
    }

    #[test]
    fn adaptive_tables_are_deterministic_for_a_fixed_seed() {
        let a = run_lookup_storm(&LookupStormConfig::small(64, 11));
        let b = run_lookup_storm(&LookupStormConfig::small(64, 11));
        assert_eq!(a.adaptive.tables_digest, b.adaptive.tables_digest);
        assert_eq!(a.adaptive.promoted, b.adaptive.promoted);
        assert_eq!(a.adaptive.zipf, b.adaptive.zipf);
        // Golden: pin the digest so unrelated refactors that change the
        // adaptive fill order fail loudly here, not in an experiment run.
        assert_eq!(
            a.adaptive.tables_digest, 3_643_977_369_524_283_162,
            "adaptive table digest drifted — update the golden only if the \
             selection policy intentionally changed"
        );
    }
}
