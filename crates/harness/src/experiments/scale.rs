//! Large-`n` scaling of the sharded, arena-backed simulation core: batched
//! concurrent bootstrap throughput, peak memory, sequential-vs-sharded
//! digest parity — and, since the streaming checker landed, a
//! Definition-3.8 verification phase that borrows the engines' tables in
//! place instead of cloning them out, with its own wall-clock and
//! peak-RSS attribution.

use std::time::Instant;

use hyperring_core::{
    bootstrap_batched_net, check_consistency, check_reachability_sampled,
    digest_and_check_streaming, tables_digest, tables_digest_iter, NeighborTable, ProtocolOptions,
};
use hyperring_id::IdSpace;

use crate::metrics::{cores, current_rss_bytes, peak_rss_bytes, reset_peak_rss};
use crate::workload::distinct_ids;

/// Configuration of one scaling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Identifier-space base.
    pub b: u16,
    /// Identifier-space digit count.
    pub d: usize,
    /// Total nodes (seed + joiners).
    pub n: usize,
    /// Joiners injected per concurrent wave.
    pub batch: usize,
    /// Event-queue shards driving the simulator.
    pub shards: usize,
    /// Workload seed for the id draw.
    pub seed: u64,
    /// Whether to re-run on one shard and compare table digests
    /// (doubles the runtime; the determinism audit).
    pub parity: bool,
    /// Whether to run the streaming consistency checker on the result.
    pub check: bool,
    /// Seeded random routing pairs for the sampled Lemma-3.1 reachability
    /// check (0 disables; the all-pairs check is quadratic and unusable
    /// past a few thousand nodes).
    pub sample_pairs: usize,
    /// Whether to additionally run the *materialized* pipeline (table
    /// clone + `SuffixIndex` checker + slice digest) and compare digest
    /// and violations against the streaming pass — the
    /// streaming-vs-materialized parity audit. Costs the very memory the
    /// streaming path avoids; keep to moderate `n`.
    pub materialized_audit: bool,
}

impl ScaleConfig {
    /// A b=16, d=8 run of `n` nodes on `shards` shards, waves of `batch`.
    pub fn new(n: usize, batch: usize, shards: usize) -> Self {
        ScaleConfig {
            b: 16,
            d: 8,
            n,
            batch,
            shards,
            seed: 13,
            parity: false,
            check: true,
            sample_pairs: 256,
            materialized_audit: false,
        }
    }
}

/// Result of one scaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleResult {
    /// Nodes bootstrapped.
    pub nodes: usize,
    /// Shards used.
    pub shards: usize,
    /// Wall-clock duration of the bootstrap (seconds).
    pub wall_secs: f64,
    /// Bootstrap throughput in nodes per wall-clock second.
    pub nodes_per_sec: f64,
    /// Peak resident set size over the bootstrap phase (bytes; 0 off
    /// Linux). The watermark is reset at run start, so when several runs
    /// share a process each row reports its own bootstrap peak (plus
    /// whatever baseline the process retains).
    pub peak_rss_bytes: u64,
    /// Peak-RSS *delta* attributed to the digest+check phase: high-water
    /// mark after the check minus current RSS before it, after a
    /// watermark reset. 0 when the kernel refuses the reset (non-Linux)
    /// or when checking is disabled.
    pub check_rss_delta_bytes: u64,
    /// Wall-clock duration of the digest+check phase (seconds).
    pub check_wall_secs: f64,
    /// Cores available to the process (shard speedup is bounded by this).
    pub cores: usize,
    /// FNV-1a digest of the final tables ([`tables_digest`]).
    pub digest: u64,
    /// Whether the consistency checker passed (`true` when skipped).
    pub consistent: bool,
    /// Sampled routing pairs attempted (0 when sampling is disabled).
    pub sampled_pairs: usize,
    /// Sampled source→target routes that failed (Lemma 3.1 says 0 for a
    /// consistent network).
    pub unreachable_sampled: usize,
    /// Digest parity versus a 1-shard re-run (`None` when not requested).
    pub parity_ok: Option<bool>,
    /// Streaming-vs-materialized parity (`None` when not requested):
    /// identical digest and identical violation list from the old
    /// clone-based pipeline.
    pub audit_ok: Option<bool>,
}

/// Bootstraps `cfg.n` nodes in concurrent waves on the sharded core,
/// then digests and Definition-3.8-checks the result **in place** over
/// the engines' arena-backed tables (one combined traversal, no
/// `Vec<NeighborTable>` clone), spot-checks Lemma-3.1 reachability on
/// seeded sampled pairs, and measures throughput plus phase-attributed
/// peak memory.
///
/// # Panics
///
/// Panics if the space is invalid, a wave fails to quiesce, or the
/// consistency check fails a structural precondition.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleResult {
    let space = IdSpace::new(cfg.b, cfg.d).expect("valid space");
    let ids = distinct_ids(space, cfg.n, cfg.seed);
    let opts = ProtocolOptions::new();

    // Scope the bootstrap peak to this run, not the process lifetime.
    reset_peak_rss();
    let start = Instant::now();
    let net = bootstrap_batched_net(space, opts, &ids, cfg.batch, cfg.shards);
    let wall_secs = start.elapsed().as_secs_f64();
    let boot_peak = peak_rss_bytes().unwrap_or(0);

    // Digest + check phase, streamed off the live engines. Reset the
    // watermark so its peak is attributable to the check alone.
    let reset_ok = reset_peak_rss();
    let rss_before = current_rss_bytes().unwrap_or(0);
    let check_start = Instant::now();
    let (digest, streaming_report) = if cfg.check {
        let (digest, report) = digest_and_check_streaming(space, net.tables_iter());
        (digest, Some(report))
    } else {
        (tables_digest_iter(net.tables_iter()), None)
    };
    let check_wall_secs = check_start.elapsed().as_secs_f64();
    let check_rss_delta_bytes = if reset_ok {
        peak_rss_bytes().unwrap_or(0).saturating_sub(rss_before)
    } else {
        0
    };
    let consistent = streaming_report.as_ref().is_none_or(|r| r.is_consistent());

    let (sampled_pairs, unreachable_sampled) = if cfg.sample_pairs > 0 {
        let refs: Vec<&NeighborTable> = net.tables_iter().collect();
        let failures = check_reachability_sampled(&refs, cfg.sample_pairs, cfg.seed ^ 0x5eed);
        (cfg.sample_pairs, failures.len())
    } else {
        (0, 0)
    };

    // The audit deliberately pays for the old pipeline: full table clone,
    // NodeId-keyed SuffixIndex, separate digest pass.
    let audit_ok = cfg.materialized_audit.then(|| {
        let tables = net.tables();
        let digest_parity = tables_digest(&tables) == digest;
        let check_parity = match &streaming_report {
            Some(streaming) => {
                check_consistency(space, &tables).violations() == streaming.violations()
            }
            None => true,
        };
        digest_parity && check_parity
    });
    drop(net);

    let parity_ok = cfg.parity.then(|| {
        let seq = bootstrap_batched_net(space, opts, &ids, cfg.batch, 1);
        tables_digest_iter(seq.tables_iter()) == digest
    });

    ScaleResult {
        nodes: cfg.n,
        shards: cfg.shards,
        wall_secs,
        nodes_per_sec: cfg.n as f64 / wall_secs.max(f64::MIN_POSITIVE),
        peak_rss_bytes: boot_peak,
        check_rss_delta_bytes,
        check_wall_secs,
        cores: cores(),
        digest,
        consistent,
        sampled_pairs,
        unreachable_sampled,
        parity_ok,
        audit_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_is_consistent_and_shard_stable() {
        let mut cfg = ScaleConfig::new(48, 16, 4);
        cfg.parity = true;
        let r = run_scale(&cfg);
        assert_eq!(r.nodes, 48);
        assert!(r.consistent);
        assert_eq!(r.parity_ok, Some(true));
        assert!(r.nodes_per_sec > 0.0);
        assert_eq!(r.sampled_pairs, 256);
        assert_eq!(r.unreachable_sampled, 0, "consistent ⇒ reachable");
    }

    #[test]
    fn shard_counts_agree_on_digest() {
        let d1 = run_scale(&ScaleConfig::new(32, 8, 1));
        let d4 = run_scale(&ScaleConfig::new(32, 8, 4));
        assert_eq!(d1.digest, d4.digest);
    }

    #[test]
    #[ignore = "minutes-scale run; the ≥262144 row of the EXPERIMENTS.md scaling sweep"]
    fn scale_n262144_streaming_check_completes() {
        let mut cfg = ScaleConfig::new(262_144, 4096, 1);
        cfg.sample_pairs = 64;
        let r = run_scale(&cfg);
        assert!(r.consistent);
        assert_eq!(r.unreachable_sampled, 0);
        assert!(r.nodes_per_sec > 0.0);
    }

    #[test]
    #[ignore = "hour-scale run; the million-node smoke the streaming checker exists for"]
    fn scale_n1048576_smoke() {
        let mut cfg = ScaleConfig::new(1_048_576, 8192, 1);
        cfg.sample_pairs = 32;
        let r = run_scale(&cfg);
        assert!(r.consistent);
        assert_eq!(r.unreachable_sampled, 0);
    }

    #[test]
    fn materialized_audit_matches_streaming_pass() {
        let mut cfg = ScaleConfig::new(40, 8, 2);
        cfg.materialized_audit = true;
        let r = run_scale(&cfg);
        assert_eq!(r.audit_ok, Some(true));
        // And with checking disabled the audit still compares digests.
        cfg.check = false;
        let r = run_scale(&cfg);
        assert_eq!(r.audit_ok, Some(true));
        assert!(r.consistent, "skipped check reports consistent");
    }
}
