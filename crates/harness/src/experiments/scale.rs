//! Large-`n` scaling of the sharded, arena-backed simulation core: batched
//! concurrent bootstrap throughput, peak memory, and sequential-vs-sharded
//! digest parity.

use std::time::Instant;

use hyperring_core::{bootstrap_batched, check_consistency, tables_digest, ProtocolOptions};
use hyperring_id::IdSpace;

use crate::metrics::{cores, peak_rss_bytes};
use crate::workload::distinct_ids;

/// Configuration of one scaling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Identifier-space base.
    pub b: u16,
    /// Identifier-space digit count.
    pub d: usize,
    /// Total nodes (seed + joiners).
    pub n: usize,
    /// Joiners injected per concurrent wave.
    pub batch: usize,
    /// Event-queue shards driving the simulator.
    pub shards: usize,
    /// Workload seed for the id draw.
    pub seed: u64,
    /// Whether to re-run on one shard and compare table digests
    /// (doubles the runtime; the determinism audit).
    pub parity: bool,
    /// Whether to run the full consistency checker on the result.
    pub check: bool,
}

impl ScaleConfig {
    /// A b=16, d=8 run of `n` nodes on `shards` shards, waves of `batch`.
    pub fn new(n: usize, batch: usize, shards: usize) -> Self {
        ScaleConfig {
            b: 16,
            d: 8,
            n,
            batch,
            shards,
            seed: 13,
            parity: false,
            check: true,
        }
    }
}

/// Result of one scaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleResult {
    /// Nodes bootstrapped.
    pub nodes: usize,
    /// Shards used.
    pub shards: usize,
    /// Wall-clock duration of the bootstrap (seconds).
    pub wall_secs: f64,
    /// Bootstrap throughput in nodes per wall-clock second.
    pub nodes_per_sec: f64,
    /// Peak resident set size after the run (bytes; 0 off Linux). A
    /// process-lifetime high-water mark, so an upper bound when several
    /// runs share a process.
    pub peak_rss_bytes: u64,
    /// Cores available to the process (shard speedup is bounded by this).
    pub cores: usize,
    /// FNV-1a digest of the final tables ([`tables_digest`]).
    pub digest: u64,
    /// Whether the consistency checker passed (`true` when skipped).
    pub consistent: bool,
    /// Digest parity versus a 1-shard re-run (`None` when not requested).
    pub parity_ok: Option<bool>,
}

/// Bootstraps `cfg.n` nodes in concurrent waves on the sharded core and
/// measures throughput, memory, and (optionally) shard-parity.
///
/// # Panics
///
/// Panics if the space is invalid, a wave fails to quiesce, or the
/// consistency check fails a structural precondition.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleResult {
    let space = IdSpace::new(cfg.b, cfg.d).expect("valid space");
    let ids = distinct_ids(space, cfg.n, cfg.seed);
    let opts = ProtocolOptions::new();

    let start = Instant::now();
    let tables = bootstrap_batched(space, opts, &ids, cfg.batch, cfg.shards);
    let wall_secs = start.elapsed().as_secs_f64();
    let digest = tables_digest(&tables);

    let consistent = !cfg.check || check_consistency(space, &tables).is_consistent();
    drop(tables);

    let parity_ok = cfg.parity.then(|| {
        let seq = bootstrap_batched(space, opts, &ids, cfg.batch, 1);
        tables_digest(&seq) == digest
    });

    ScaleResult {
        nodes: cfg.n,
        shards: cfg.shards,
        wall_secs,
        nodes_per_sec: cfg.n as f64 / wall_secs.max(f64::MIN_POSITIVE),
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        cores: cores(),
        digest,
        consistent,
        parity_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_is_consistent_and_shard_stable() {
        let mut cfg = ScaleConfig::new(48, 16, 4);
        cfg.parity = true;
        let r = run_scale(&cfg);
        assert_eq!(r.nodes, 48);
        assert!(r.consistent);
        assert_eq!(r.parity_ok, Some(true));
        assert!(r.nodes_per_sec > 0.0);
    }

    #[test]
    fn shard_counts_agree_on_digest() {
        let d1 = run_scale(&ScaleConfig::new(32, 8, 1));
        let d4 = run_scale(&ScaleConfig::new(32, 8, 4));
        assert_eq!(d1.digest, d4.digest);
    }
}
