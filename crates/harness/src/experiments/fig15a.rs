//! Figure 15(a): the theoretical upper bound of `E(J)` (Theorem 5) as a
//! function of the network size `n`, for the paper's four parameter
//! combinations (m ∈ {500, 1000} × d ∈ {8, 40}, b = 16).

use hyperring_analysis::upper_bound_join_noti;

/// One x-position of Figure 15(a) with the four curves' values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig15aPoint {
    /// Network size `n`.
    pub n: u64,
    /// m = 500, b = 16, d = 40.
    pub m500_d40: f64,
    /// m = 1000, b = 16, d = 40.
    pub m1000_d40: f64,
    /// m = 500, b = 16, d = 8.
    pub m500_d8: f64,
    /// m = 1000, b = 16, d = 8.
    pub m1000_d8: f64,
}

/// Computes the Figure 15(a) series over `n ∈ {10k, 10k+step, …, 100k}`.
///
/// # Panics
///
/// Panics if `step == 0`.
pub fn fig15a_series(step: u64) -> Vec<Fig15aPoint> {
    assert!(step > 0, "step must be positive");
    let mut out = Vec::new();
    let mut n = 10_000u64;
    while n <= 100_000 {
        out.push(Fig15aPoint {
            n,
            m500_d40: upper_bound_join_noti(16, 40, n, 500),
            m1000_d40: upper_bound_join_noti(16, 40, n, 1000),
            m500_d8: upper_bound_join_noti(16, 8, n, 500),
            m1000_d8: upper_bound_join_noti(16, 8, n, 1000),
        });
        n += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_covers_figure_range() {
        let s = fig15a_series(10_000);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].n, 10_000);
        assert_eq!(s[9].n, 100_000);
        for p in &s {
            // Figure 15(a)'s y-axis runs from 3 to 9.
            for v in [p.m500_d40, p.m1000_d40, p.m500_d8, p.m1000_d8] {
                assert!((3.0..9.0).contains(&v), "n={}: {v}", p.n);
            }
            // m=1000 curves dominate m=500 curves.
            assert!(p.m1000_d40 >= p.m500_d40);
            assert!(p.m1000_d8 >= p.m500_d8);
            // d makes almost no difference (curves overlap in the figure).
            assert!((p.m1000_d40 - p.m1000_d8).abs() < 1e-3);
        }
    }
}
