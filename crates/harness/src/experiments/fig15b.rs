//! Figure 15(b) and the §5.2 averages table: simulate `m` concurrent joins
//! into a consistent `n`-node network and report the distribution of
//! `JoinNotiMsg` sent per joining node, alongside the Theorem-5 bound, the
//! Theorem-3 bound check, and the `SpeNotiMsg` rarity claim (footnote 8).

use hyperring_analysis::{theorem3_bound, upper_bound_join_noti};
use hyperring_core::{MessageKind, PayloadMode, ProtocolOptions, SimNetworkBuilder};
use hyperring_id::IdSpace;
use hyperring_sim::stats::Distribution;
use hyperring_sim::UniformDelay;

use crate::topo_delay::SharedTopology;
use crate::workload::{run_trials, run_trials_sequential, JoinWorkload};

/// Which latency substrate to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayKind {
    /// Full 8320-router transit-stub topology (the paper's setup).
    PaperTopology,
    /// Small 72-router transit-stub topology (tests).
    TestTopology,
    /// Uniform random latency in `[1 ms, 100 ms]` (no router graph).
    Uniform,
}

/// Configuration of one Figure 15(b) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig15bConfig {
    /// Digit base (the paper: 16).
    pub b: u16,
    /// Digits per id (the paper: 8 or 40).
    pub d: usize,
    /// Initial network size (the paper: 3096 or 7192).
    pub n: usize,
    /// Concurrent joiners (the paper: 1000).
    pub m: usize,
    /// Latency substrate.
    pub delay: DelayKind,
    /// Run seed.
    pub seed: u64,
    /// Table-payload mode (§6.2); the base protocol uses `Full`.
    pub payload: PayloadMode,
}

impl Fig15bConfig {
    /// The four configurations of Figure 15(b), in the paper's order.
    pub fn paper_configs() -> [Fig15bConfig; 4] {
        let base = Fig15bConfig {
            b: 16,
            d: 8,
            n: 3096,
            m: 1000,
            delay: DelayKind::PaperTopology,
            seed: 2003,
            payload: PayloadMode::Full,
        };
        [
            Fig15bConfig { ..base },
            Fig15bConfig { d: 40, ..base },
            Fig15bConfig { n: 7192, ..base },
            Fig15bConfig {
                n: 7192,
                d: 40,
                ..base
            },
        ]
    }

    /// A scaled-down configuration for tests and quick benches.
    pub fn small(d: usize, seed: u64) -> Fig15bConfig {
        Fig15bConfig {
            b: 16,
            d,
            n: 192,
            m: 64,
            delay: DelayKind::TestTopology,
            seed,
            payload: PayloadMode::Full,
        }
    }
}

/// Result of one Figure 15(b) run.
#[derive(Debug, Clone)]
pub struct Fig15bResult {
    /// The configuration that produced this result.
    pub config: Fig15bConfig,
    /// Distribution of `JoinNotiMsg` sent per joining node (the figure's
    /// x-axis variable).
    pub join_noti: Distribution,
    /// Theorem-5 upper bound on the mean for this `(b, d, n, m)`.
    pub bound: f64,
    /// Maximum `CpRstMsg + JoinWaitMsg` sent by any joiner.
    pub max_cprst_joinwait: u64,
    /// The Theorem-3 bound `d + 1`.
    pub theorem3: u64,
    /// Total `SpeNotiMsg` sent across the whole run (footnote 8 says this
    /// is rare).
    pub spe_noti_total: u64,
    /// Total messages delivered in the run.
    pub messages_delivered: u64,
    /// Total modeled bytes sent by joiners.
    pub joiner_bytes: u64,
    /// Whether the final network passed the Definition-3.8 checker.
    pub consistent: bool,
    /// Virtual time at quiescence (µs).
    pub finished_at: u64,
}

impl Fig15bResult {
    /// Mean `JoinNotiMsg` per joiner — the number the paper reports as
    /// 6.117 / 6.051 / 5.026 / 5.399 for its four configurations.
    pub fn average(&self) -> f64 {
        self.join_noti.mean()
    }

    /// The empirical CDF points plotted in Figure 15(b).
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        self.join_noti.cdf_points()
    }
}

/// Runs one Figure 15(b) experiment.
///
/// Equivalent to `run_fig15b_trials(cfg, 1, true)[0]`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (e.g. zero members) or if the
/// run violates a theorem (Theorem 2 termination is asserted internally).
pub fn run_fig15b(cfg: &Fig15bConfig) -> Fig15bResult {
    run_fig15b_trials(cfg, 1, true)
        .pop()
        .expect("one trial requested")
}

/// Runs `trials` independent Figure 15(b) experiments, fanned across
/// cores (or sequentially when `sequential` is set — the results are
/// bit-identical either way).
///
/// All trials share **one** router topology — generated once from
/// `cfg.seed`, behind an `Arc`, with its host-to-host delay rows memoized
/// across trials — matching the paper's setup (a single GT-ITM topology,
/// repeated runs) and skipping the dominant per-trial cost. Trial `k`
/// draws its workload and message schedule from
/// [`trial_seed`](crate::workload::trial_seed)`(cfg.seed, k)`, so trial 0 reproduces the single-run
/// experiment exactly.
///
/// # Panics
///
/// As [`run_fig15b`], for any trial.
pub fn run_fig15b_trials(cfg: &Fig15bConfig, trials: usize, sequential: bool) -> Vec<Fig15bResult> {
    let space = IdSpace::new(cfg.b, cfg.d).expect("valid space");
    let total_hosts = cfg.n + cfg.m;
    let topo = match cfg.delay {
        DelayKind::PaperTopology => {
            Some(SharedTopology::paper_scale(total_hosts, cfg.seed ^ 0xd1ce))
        }
        DelayKind::TestTopology => Some(SharedTopology::test_scale(total_hosts, cfg.seed ^ 0xd1ce)),
        DelayKind::Uniform => None,
    };

    let trial = |_k: usize, seed: u64| -> Fig15bResult {
        let workload = JoinWorkload::generate(space, cfg.n, cfg.m, seed);
        let mut b = SimNetworkBuilder::new(space);
        b.options(ProtocolOptions::with_payload(cfg.payload));
        for id in &workload.members {
            b.add_member(*id);
        }
        for (id, gw) in &workload.joiners {
            b.add_joiner(*id, *gw, 0); // all joins start at the same time
        }
        let (report, c) = match &topo {
            Some(t) => run_with(&mut b, t.delay_model(), seed),
            None => run_with(&mut b, UniformDelay::new(1_000, 100_000), seed),
        };
        Fig15bResult {
            config: Fig15bConfig { seed, ..*cfg },
            bound: upper_bound_join_noti(cfg.b as u32, cfg.d as u32, cfg.n as u64, cfg.m as u64),
            theorem3: theorem3_bound(cfg.d),
            join_noti: c.join_noti,
            max_cprst_joinwait: c.max_cprst_joinwait,
            spe_noti_total: c.spe_noti_total,
            messages_delivered: report.delivered,
            joiner_bytes: c.joiner_bytes,
            consistent: c.consistent,
            finished_at: report.finished_at,
        }
    };

    if sequential {
        run_trials_sequential(trials, cfg.seed, trial)
    } else {
        run_trials(trials, cfg.seed, trial)
    }
}

fn run_with<D: hyperring_sim::DelayModel>(
    b: &mut SimNetworkBuilder,
    delay: D,
    seed: u64,
) -> (hyperring_sim::RunReport, Collected) {
    let mut net = b.build(delay, seed);
    let report = net.run();
    assert!(!report.truncated, "simulation did not quiesce");
    (report, collect(net))
}

struct Collected {
    join_noti: Distribution,
    max_cprst_joinwait: u64,
    spe_noti_total: u64,
    joiner_bytes: u64,
    consistent: bool,
}

fn collect<D: hyperring_sim::DelayModel>(net: hyperring_core::SimNetwork<D>) -> Collected {
    assert!(net.all_in_system(), "Theorem 2 violated: joiner stuck");
    let join_noti = Distribution::from_samples(net.joiners().map(|e| e.stats().join_noti()));
    let max_cprst_joinwait = net
        .joiners()
        .map(|e| e.stats().cprst_plus_joinwait())
        .max()
        .unwrap_or(0);
    let spe_noti_total = net
        .engines()
        .map(|e| e.stats().sent(MessageKind::SpeNoti))
        .sum();
    let joiner_bytes = net.joiners().map(|e| e.stats().total_bytes()).sum();
    let consistent = net.check_consistency().is_consistent();
    Collected {
        join_noti,
        max_cprst_joinwait,
        spe_noti_total,
        joiner_bytes,
        consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_obeys_all_theorems() {
        for d in [8usize, 16] {
            let cfg = Fig15bConfig::small(d, 42);
            let r = run_fig15b(&cfg);
            assert!(r.consistent, "d={d}: inconsistent network");
            assert!(
                r.max_cprst_joinwait <= r.theorem3,
                "d={d}: Theorem 3 violated ({} > {})",
                r.max_cprst_joinwait,
                r.theorem3
            );
            assert!(r.join_noti.len() == cfg.m);
            assert!(r.average() > 0.0);
            // SpeNotiMsg is rare (footnote 8): well under one per joiner.
            assert!(
                (r.spe_noti_total as f64) < 0.5 * cfg.m as f64,
                "d={d}: {} SpeNotiMsg for {} joins",
                r.spe_noti_total,
                cfg.m
            );
        }
    }

    #[test]
    fn uniform_delay_variant_also_consistent() {
        let cfg = Fig15bConfig {
            delay: DelayKind::Uniform,
            ..Fig15bConfig::small(8, 7)
        };
        let r = run_fig15b(&cfg);
        assert!(r.consistent);
        let cdf = r.cdf();
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = Fig15bConfig::small(8, 99);
        let a = run_fig15b(&cfg);
        let b = run_fig15b(&cfg);
        assert_eq!(a.average(), b.average());
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn parallel_trials_match_sequential_and_trial_zero_matches_single_run() {
        let cfg = Fig15bConfig::small(8, 1234);
        let par = run_fig15b_trials(&cfg, 3, false);
        let seq = run_fig15b_trials(&cfg, 3, true);
        assert_eq!(par.len(), 3);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.config.seed, s.config.seed);
            assert_eq!(p.average(), s.average());
            assert_eq!(p.messages_delivered, s.messages_delivered);
            assert_eq!(p.finished_at, s.finished_at);
            assert_eq!(p.cdf(), s.cdf());
            assert!(p.consistent);
        }
        // Distinct seeds → the trials really are independent samples.
        assert_ne!(par[0].config.seed, par[1].config.seed);
        // Trial 0 keeps the base seed and reproduces the single-run API.
        let single = run_fig15b(&cfg);
        assert_eq!(par[0].config.seed, cfg.seed);
        assert_eq!(par[0].average(), single.average());
        assert_eq!(par[0].messages_delivered, single.messages_delivered);
        assert_eq!(par[0].finished_at, single.finished_at);
    }
}
