//! §6.1 network initialization: start from one node, join everyone else
//! through it, end with a consistent network.

use std::path::Path;

use hyperring_core::{
    bootstrap_sequential, check_consistency_streaming, JsonlTrace, ProtocolOptions,
    SimNetworkBuilder,
};
use hyperring_id::IdSpace;
use hyperring_sim::UniformDelay;

use crate::workload::distinct_ids;

/// How the non-seed nodes join during initialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapConfig {
    /// One node at a time, each join completing before the next begins.
    Sequential,
    /// Everyone at once at t = 0, all through the seed node — the
    /// worst-case contention pattern (all joins are dependent on the seed's
    /// early tables).
    Concurrent,
    /// Joins start staggered `gap_us` apart (a mix of overlap patterns).
    Staggered {
        /// Microseconds between consecutive join starts.
        gap_us: u64,
    },
}

/// Result of a bootstrap run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapResult {
    /// Number of nodes initialized (including the seed).
    pub nodes: usize,
    /// Whether the final network passed the consistency checker.
    pub consistent: bool,
    /// Messages delivered (reported as 0 for the sequential path, whose
    /// per-join counts are not comparable to one concurrent run; kept at
    /// 0 so experiment CSVs stay byte-stable across the incremental
    /// bootstrap rewrite).
    pub messages: u64,
    /// Virtual time at quiescence (µs; 0 for sequential).
    pub finished_at: u64,
}

/// Initializes an `n`-node network from a single seed node per §6.1.
///
/// # Panics
///
/// Panics if `n == 0` or the space is too small.
pub fn run_bootstrap(
    b: u16,
    d: usize,
    n: usize,
    mode: BootstrapConfig,
    seed: u64,
) -> BootstrapResult {
    run_bootstrap_traced(b, d, n, mode, seed, None)
}

/// [`run_bootstrap`] with an optional JSONL protocol trace of the run
/// written to `trace` (concurrent/staggered modes only; the sequential
/// path runs one isolated join at a time and is not worth tracing).
///
/// # Panics
///
/// As [`run_bootstrap`], plus if the trace file cannot be created.
pub fn run_bootstrap_traced(
    b: u16,
    d: usize,
    n: usize,
    mode: BootstrapConfig,
    seed: u64,
    trace: Option<&Path>,
) -> BootstrapResult {
    let space = IdSpace::new(b, d).expect("valid space");
    let ids = distinct_ids(space, n, seed);
    match mode {
        BootstrapConfig::Sequential => {
            // One live simulator grown join-by-join (O(n) incremental
            // work); behavior-identical to the old rebuild-per-join path.
            let tables = bootstrap_sequential(space, ProtocolOptions::new(), &ids);
            let consistent = check_consistency_streaming(space, tables.iter()).is_consistent();
            BootstrapResult {
                nodes: n,
                consistent,
                messages: 0,
                finished_at: 0,
            }
        }
        BootstrapConfig::Concurrent | BootstrapConfig::Staggered { .. } => {
            let mut builder = SimNetworkBuilder::new(space);
            builder.options(ProtocolOptions::new());
            if let Some(path) = trace {
                let file = std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
                builder.trace(Box::new(JsonlTrace::new(std::io::BufWriter::new(file))));
            }
            builder.add_member(ids[0]);
            for (i, id) in ids[1..].iter().enumerate() {
                let at = match mode {
                    BootstrapConfig::Staggered { gap_us } => i as u64 * gap_us,
                    _ => 0,
                };
                builder.add_joiner(*id, ids[0], at);
            }
            let mut net = builder.build(UniformDelay::new(500, 60_000), seed);
            let report = net.run();
            assert!(!report.truncated, "bootstrap did not quiesce");
            assert!(net.all_in_system(), "bootstrap joiner stuck");
            BootstrapResult {
                nodes: n,
                consistent: net.check_consistency().is_consistent(),
                messages: report.delivered,
                finished_at: report.finished_at,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_bootstrap_consistent() {
        let r = run_bootstrap(4, 4, 16, BootstrapConfig::Sequential, 3);
        assert!(r.consistent);
        assert_eq!(r.nodes, 16);
    }

    #[test]
    fn concurrent_bootstrap_consistent() {
        // Everyone piles onto one seed node at t = 0 — the protocol's
        // JoinWait queueing (Q_j) must serialize them safely.
        for seed in [1u64, 2, 3] {
            let r = run_bootstrap(4, 5, 24, BootstrapConfig::Concurrent, seed);
            assert!(r.consistent, "seed {seed}");
            assert!(r.messages > 0);
        }
    }

    #[test]
    fn staggered_bootstrap_consistent() {
        let r = run_bootstrap(8, 4, 20, BootstrapConfig::Staggered { gap_us: 10_000 }, 9);
        assert!(r.consistent);
        assert!(r.finished_at > 0);
    }
}
