//! Routing stretch and table optimization (extension; the paper's problem
//! 3): the ratio of overlay route latency to direct latency — the P2
//! property of §1 — before and after nearest-neighbor table optimization.

use std::collections::HashMap;

use hyperring_core::{optimize_tables, route, NeighborTable, RouteOutcome};
use hyperring_id::{IdSpace, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::topo_delay::TopologyDelay;
use crate::workload::distinct_ids;

/// Summary statistics of a stretch sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchStats {
    /// Sampled source/target pairs.
    pub pairs: usize,
    /// Mean stretch.
    pub mean: f64,
    /// Median stretch.
    pub median: f64,
    /// 95th-percentile stretch.
    pub p95: f64,
    /// Mean overlay hops.
    pub mean_hops: f64,
}

/// Result of the stretch experiment.
#[derive(Debug, Clone)]
pub struct StretchResult {
    /// Stretch over unoptimized (oracle) tables.
    pub before: StretchStats,
    /// Stretch after each optimization round count tried.
    pub after: Vec<(usize, StretchStats)>,
    /// Entry replacements made by the deepest optimization.
    pub replacements: usize,
}

fn measure<F>(
    space: IdSpace,
    ids: &[NodeId],
    tables: &[NeighborTable],
    latency: &F,
    samples: usize,
    seed: u64,
) -> StretchStats
where
    F: Fn(&NodeId, &NodeId) -> u64,
{
    let by_id: HashMap<NodeId, &NeighborTable> = tables.iter().map(|t| (t.owner(), t)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stretches = Vec::new();
    let mut hops_total = 0usize;
    let _ = space;
    while stretches.len() < samples {
        let s = ids[rng.gen_range(0..ids.len())];
        let t = ids[rng.gen_range(0..ids.len())];
        if s == t {
            continue;
        }
        let direct = latency(&s, &t);
        if direct == 0 {
            continue;
        }
        match route(s, t, |id| by_id.get(id).copied()) {
            RouteOutcome::Delivered { path } => {
                let overlay: u64 = path.windows(2).map(|w| latency(&w[0], &w[1])).sum();
                stretches.push(overlay as f64 / direct as f64);
                hops_total += path.len() - 1;
            }
            dropped => panic!("consistent tables dropped a route: {dropped:?}"),
        }
    }
    stretches.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = stretches.len();
    StretchStats {
        pairs: n,
        mean: stretches.iter().sum::<f64>() / n as f64,
        median: stretches[n / 2],
        p95: stretches[(n as f64 * 0.95) as usize],
        mean_hops: hops_total as f64 / n as f64,
    }
}

/// Runs the stretch experiment: `n` overlay nodes on a transit-stub
/// topology, `samples` random routes, optimization with each round count
/// in `round_counts`.
///
/// # Panics
///
/// Panics on degenerate parameters or if routing over consistent tables
/// ever drops a message.
pub fn run_stretch(
    b: u16,
    d: usize,
    n: usize,
    samples: usize,
    round_counts: &[usize],
    seed: u64,
) -> StretchResult {
    let space = IdSpace::new(b, d).expect("valid space");
    let ids = distinct_ids(space, n, seed);
    let topo = TopologyDelay::test_scale(n, seed ^ 0x50f7);
    let host_of: HashMap<NodeId, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let latency = |a: &NodeId, b_: &NodeId| -> u64 {
        topo.topology()
            .host_latency(topo.hosts(), host_of[a], host_of[b_])
    };

    let tables = hyperring_core::build_consistent_tables(space, &ids);
    let before = measure(space, &ids, &tables, &latency, samples, seed ^ 1);

    let mut after = Vec::new();
    let mut replacements = 0;
    for &rounds in round_counts {
        let mut optimized = tables.clone();
        let report = optimize_tables(&mut optimized, |a, b_| latency(a, b_), rounds);
        replacements = report.replacements;
        after.push((
            rounds,
            measure(space, &ids, &optimized, &latency, samples, seed ^ 1),
        ));
    }
    StretchResult {
        before,
        after,
        replacements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_reduces_stretch() {
        let r = run_stretch(16, 6, 96, 400, &[1, 3], 5);
        assert!(r.before.mean >= 1.0, "stretch below 1 is impossible");
        assert!(r.replacements > 0);
        let after3 = r.after.last().unwrap().1;
        assert!(
            after3.mean < r.before.mean,
            "optimization did not help: {} -> {}",
            r.before.mean,
            after3.mean
        );
        // More rounds never hurt.
        assert!(r.after[1].1.mean <= r.after[0].1.mean + 1e-9);
    }

    #[test]
    fn stats_are_ordered() {
        let r = run_stretch(8, 5, 64, 200, &[1], 9);
        for s in std::iter::once(r.before).chain(r.after.iter().map(|(_, s)| *s)) {
            assert!(s.median <= s.p95 + 1e-9);
            assert!(s.pairs == 200);
            assert!(s.mean_hops >= 1.0);
        }
    }
}
