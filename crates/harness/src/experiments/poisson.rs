//! Steady-state Poisson churn: the paper's dynamic network, run as a
//! continuous process rather than a one-shot wave. Node lifetimes are
//! exponential with a configurable half-life, so departures form a
//! Poisson process of rate `λ = n · ln2 / t½`; arrivals form an
//! independent Poisson process of the same rate, holding the population
//! near `n`. Every departure is a *silent crash* — the failure detector
//! must notice, evict, and (in the repair arm) refill the vacated slots
//! while the next disruptions are already landing.
//!
//! Churn runs over `[0, churn_until]`; the tail up to `horizon` is
//! quiescent so the final checkpoints measure whether repair *converges*
//! once disruptions stop, not merely whether it keeps pace. Periodic
//! [`Timeline`] checkpoints yield consistency-recovery spans, and the
//! [`ChurnLog`](crate::timeline::ChurnLog) trace sink yields per-slot
//! time-to-repair samples; both are reported as raw vectors so callers
//! can build CDFs (p50/p95/p99 via [`crate::metrics::percentile`]).
//!
//! The repair arm runs the hardened recovery path — exponential backoff
//! with deterministic jitter on reply-awaiting retries, bounded repair
//! queries in flight, exponential re-query pacing — plus gateway
//! fallback for joins whose contact crashes mid-handshake. The control
//! arm evicts but never repairs, pinning down what the repair subsystem
//! (and not mere eviction) buys.

use hyperring_core::{FailureDetector, ProtocolOptions, RetryPolicy};
use hyperring_id::IdSpace;
use hyperring_sim::Time;

use crate::timeline::{CheckpointReport, Timeline, TimelineScenario};

/// Shape of a steady-state Poisson churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonChurnConfig {
    /// Identifier base `b`.
    pub base: u16,
    /// Identifier length `d`.
    pub digits: usize,
    /// Size of the initial consistent network `V` (and the target
    /// steady-state population).
    pub members: usize,
    /// Node-lifetime half-life (virtual µs). Departure rate is
    /// `members · ln2 / half_life_us`; arrivals match it.
    pub half_life_us: u64,
    /// End of the churn window: no crash or join is scheduled after this.
    pub churn_until: Time,
    /// End of the run; the `[churn_until, horizon]` tail is quiescent so
    /// late checkpoints measure convergence.
    pub horizon: Time,
    /// Spacing of consistency checkpoints (µs).
    pub checkpoint_every: Time,
    /// Probe interval and suspicion threshold; `repair` and the pacing
    /// fields are overridden per arm by [`run_poisson_churn`].
    pub fd: FailureDetector,
}

impl Default for PoissonChurnConfig {
    fn default() -> Self {
        PoissonChurnConfig {
            base: 4,
            digits: 6,
            members: 64,
            half_life_us: 20_000_000,
            churn_until: 14_000_000,
            horizon: 30_000_000,
            checkpoint_every: 2_000_000,
            fd: FailureDetector {
                probe_interval_us: 200_000,
                suspicion_threshold: 3,
                repair: true,
                ..FailureDetector::default()
            },
        }
    }
}

impl PoissonChurnConfig {
    /// Expected departures over the churn window
    /// (`members · ln2 · churn_until / half_life_us`).
    pub fn expected_departures(&self) -> f64 {
        (self.members as f64) * std::f64::consts::LN_2 * (self.churn_until as f64)
            / (self.half_life_us as f64)
    }
}

/// Outcome of one Poisson-churn arm.
#[derive(Debug, Clone)]
pub struct PoissonChurnResult {
    /// The half-life this arm ran under (µs).
    pub half_life_us: u64,
    /// Crashes the schedule produced (Poisson draw; capped at
    /// `members − 1`).
    pub crashed: usize,
    /// Joins the schedule produced.
    pub joins: usize,
    /// Whether the crash draw hit the `members − 1` cap (the schedule is
    /// then truncated, not thinned).
    pub crash_capped: bool,
    /// Live nodes at the end.
    pub survivors: usize,
    /// Definition-3.8 violations among the survivor tables at the end.
    pub violations: usize,
    /// The reachability-breaking subset of those.
    pub false_negatives: usize,
    /// Whether the run ended consistent.
    pub consistent: bool,
    /// Survivor table entries still naming a crashed node.
    pub dead_refs: usize,
    /// Per-checkpoint consistency verdicts, in schedule order.
    pub checkpoints: Vec<CheckpointReport>,
    /// Slots evicted over the run.
    pub evicted: u64,
    /// Slots repaired over the run.
    pub repaired: u64,
    /// Eviction-to-repair latency samples (µs).
    pub ttr_from_eviction_us: Vec<u64>,
    /// Crash-to-repair latency samples (µs).
    pub ttr_from_crash_us: Vec<u64>,
    /// Consistency-recovery spans (µs).
    pub recovery_us: Vec<u64>,
    /// Messages delivered over the run.
    pub delivered: u64,
    /// Timers fired over the run.
    pub timers_fired: u64,
    /// Virtual time the run ended at (µs).
    pub finished_at: u64,
    /// Protocol events recorded.
    pub traced: u64,
    /// FNV-1a digest of the full protocol trace.
    pub trace_digest: u64,
}

/// Samples a Poisson process of `rate` events/µs over `[0, until)` with
/// exponential inter-arrival gaps, capped at `max_events`. Returns the
/// event times and whether the cap truncated the draw.
fn poisson_times(rate: f64, until: Time, max_events: usize, seed: u64) -> (Vec<Time>, bool) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut times = Vec::new();
    let mut t = 0.0_f64;
    loop {
        // Inverse-CDF exponential sample; gen::<f64>() ∈ [0, 1), so flip
        // to (0, 1] to keep ln finite.
        let u: f64 = 1.0 - rng.gen::<f64>();
        t += -u.ln() / rate;
        if t >= until as f64 {
            return (times, false);
        }
        if times.len() == max_events {
            return (times, true);
        }
        times.push(t as Time);
    }
}

/// Builds the seeded churn schedule for `cfg`: one `crash_count(1)` per
/// departure, one `join(1)` per arrival, checkpoints every
/// `checkpoint_every` µs through the horizon. Pure — both arms of a trial
/// compile the identical timeline.
pub fn poisson_timeline(cfg: &PoissonChurnConfig, seed: u64) -> (Timeline, usize, usize, bool) {
    let rate = (cfg.members as f64) * std::f64::consts::LN_2 / (cfg.half_life_us as f64);
    // Victims are drawn from the initial members, so the schedule can
    // kill at most members − 1 of them; an extreme half-life truncates.
    let (deaths, capped) = poisson_times(
        rate,
        cfg.churn_until,
        cfg.members - 1,
        seed ^ 0x9e6c_63d0_76cc_4957,
    );
    let (births, _) = poisson_times(
        rate,
        cfg.churn_until,
        usize::MAX,
        seed ^ 0x2545_f491_4f6c_dd1d,
    );
    let mut tl = Timeline::new();
    for t in &deaths {
        tl = tl.at(*t).crash_count(1).into();
    }
    for t in &births {
        tl = tl.at(*t).join(1).into();
    }
    let mut at = cfg.checkpoint_every;
    while at <= cfg.horizon {
        tl = tl.at(at).checkpoint(&format!("t={at}")).into();
        at += cfg.checkpoint_every;
    }
    (tl.horizon(cfg.horizon), deaths.len(), births.len(), capped)
}

/// Runs one seeded Poisson-churn arm. `repair` selects the arm: `true`
/// runs the hardened repair path (bounded in-flight queries, exponential
/// re-query pacing, retry backoff with jitter, join gateway fallback);
/// `false` is the eviction-only control on the identical schedule.
pub fn run_poisson_churn(cfg: &PoissonChurnConfig, seed: u64, repair: bool) -> PoissonChurnResult {
    let space = IdSpace::new(cfg.base, cfg.digits).expect("valid space");
    let (tl, crashes, joins, crash_capped) = poisson_timeline(cfg, seed);
    let fd = FailureDetector {
        repair,
        max_repairs_in_flight: 4,
        repair_backoff: true,
        ..cfg.fd
    };
    // Churn-sized retry budget: short enough that a join whose contact
    // crashed falls back within a couple of virtual seconds (timeout
    // 300 ms ≫ the 100 ms worst-case round trip; exhaustion after
    // 0.3 + 0.6 + 1.2 s of doubling), with jitter de-synchronizing the
    // retry bursts a crash wave would otherwise align.
    let retry = RetryPolicy {
        timeout_us: 300_000,
        max_retries: 2,
        backoff_pct: 200,
        jitter_pct: 10,
        join_fallback: true,
        ..RetryPolicy::default()
    };
    let r = TimelineScenario::new(space)
        .members(cfg.members)
        .seed(seed)
        .options(
            ProtocolOptions::new()
                .with_failure_detector(fd)
                .with_retry(retry),
        )
        .run(tl);
    debug_assert_eq!(r.crashed, crashes);
    debug_assert_eq!(r.joins, joins);
    PoissonChurnResult {
        half_life_us: cfg.half_life_us,
        crashed: r.crashed,
        joins: r.joins,
        crash_capped,
        survivors: r.survivors,
        violations: r.violations,
        false_negatives: r.false_negatives,
        consistent: r.consistent,
        dead_refs: r.dead_refs,
        checkpoints: r.checkpoints,
        evicted: r.evicted,
        repaired: r.repaired,
        ttr_from_eviction_us: r.ttr_from_eviction_us,
        ttr_from_crash_us: r.ttr_from_crash_us,
        recovery_us: r.recovery_us,
        delivered: r.delivered,
        timers_fired: r.timers_fired,
        finished_at: r.finished_at,
        traced: r.traced,
        trace_digest: r.trace_digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PoissonChurnConfig {
        PoissonChurnConfig {
            members: 16,
            half_life_us: 8_000_000,
            churn_until: 4_000_000,
            horizon: 12_000_000,
            checkpoint_every: 2_000_000,
            fd: FailureDetector {
                probe_interval_us: 100_000,
                suspicion_threshold: 3,
                repair: true,
                ..FailureDetector::default()
            },
            ..PoissonChurnConfig::default()
        }
    }

    #[test]
    fn schedule_is_pure_and_rate_scales_with_half_life() {
        let cfg = small();
        let (a, da, ba, _) = poisson_timeline(&cfg, 7);
        let (b, db, bb, _) = poisson_timeline(&cfg, 7);
        assert_eq!(a, b);
        assert_eq!((da, ba), (db, bb));
        // Quartering the half-life quadruples the expected event count;
        // with these draws it must strictly increase.
        let fast = PoissonChurnConfig {
            half_life_us: cfg.half_life_us / 4,
            ..cfg
        };
        let (_, df, bf, _) = poisson_timeline(&fast, 7);
        assert!(df > da && bf > ba, "({df},{bf}) vs ({da},{ba})");
    }

    #[test]
    fn repair_arm_converges_where_control_does_not() {
        let cfg = small();
        let on = run_poisson_churn(&cfg, 11, true);
        assert!(on.crashed > 0 && on.joins > 0, "churn draw was empty");
        assert_eq!(on.dead_refs, 0);
        assert!(on.consistent, "{} violations with repair on", on.violations);
        assert!(on.repaired > 0 && !on.ttr_from_crash_us.is_empty());
        let last = on.checkpoints.last().unwrap();
        assert!(last.consistent, "quiescent-tail checkpoint inconsistent");

        let off = run_poisson_churn(&cfg, 11, false);
        assert_eq!(off.crashed, on.crashed, "arms drew different schedules");
        assert!(
            !off.consistent && off.false_negatives > 0,
            "the control arm should be left with holes"
        );
        // Wherever the settled control is inconsistent, repair is not.
        let settled = on
            .checkpoints
            .iter()
            .zip(&off.checkpoints)
            .filter(|(_, c)| c.at >= cfg.churn_until + 4_000_000);
        for (r, c) in settled {
            if !c.consistent {
                assert!(r.consistent, "repair arm inconsistent at t={}", r.at);
            }
        }
    }

    #[test]
    fn crash_cap_truncates_extreme_half_lives() {
        let cfg = PoissonChurnConfig {
            half_life_us: 100_000, // far more deaths than members
            ..small()
        };
        let (_, deaths, _, capped) = poisson_timeline(&cfg, 3);
        assert!(capped);
        assert_eq!(deaths, cfg.members - 1);
    }
}
