//! Concurrent joins over a lossy network: drops and duplicates injected
//! by a seeded [`FaultyDelay`], recovery driven by the engine's
//! [`RetryPolicy`] timers. The paper assumes reliable delivery (§2); this
//! experiment measures what the timeout/retransmission layer costs to
//! restore that assumption and verifies Definition 3.8 still holds at the
//! end.

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use hyperring_core::{JsonlTrace, ProtocolOptions, RetryPolicy, SimNetworkBuilder};
use hyperring_id::IdSpace;
use hyperring_sim::{FaultyDelay, UniformDelay};

use crate::workload::distinct_ids;

/// Shape of a fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultsConfig {
    /// Identifier base `b`.
    pub base: u16,
    /// Identifier length `d`.
    pub digits: usize,
    /// Size of the initial consistent network `V`.
    pub members: usize,
    /// Number of concurrent joiners (all start at t = 0).
    pub joiners: usize,
    /// Probability that any message is dropped.
    pub drop_p: f64,
    /// Probability that a delivered message is duplicated.
    pub dup_p: f64,
    /// Timeout/retry policy handed to every engine.
    pub retry: RetryPolicy,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            base: 4,
            digits: 6,
            members: 16,
            joiners: 48,
            drop_p: 0.10,
            dup_p: 0.02,
            retry: RetryPolicy {
                timeout_us: 300_000,
                max_retries: 30,
                noti_repeats: 6,
                ..RetryPolicy::default()
            },
        }
    }
}

/// Outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultsResult {
    /// Messages actually delivered.
    pub delivered: u64,
    /// Messages dropped by the fault injector.
    pub dropped: u64,
    /// Extra copies delivered by the fault injector.
    pub duplicated: u64,
    /// Retry timers that fired.
    pub timers_fired: u64,
    /// Protocol events recorded to the trace sink (0 when not tracing).
    pub traced: u64,
    /// Virtual time at quiescence (µs).
    pub finished_at: u64,
    /// Whether every joiner reached `in_system`.
    pub all_in_system: bool,
    /// Whether the final tables satisfy Definition 3.8.
    pub consistent: bool,
}

/// Runs one seeded fault-injection trial. With `trace`, a JSONL protocol
/// trace of the run is written to that path (deterministic for a fixed
/// seed: virtual time, not the wall clock, stamps every record).
///
/// # Panics
///
/// Panics if the trace file cannot be created or the run fails to
/// quiesce.
pub fn run_faults(cfg: &FaultsConfig, seed: u64, trace: Option<&Path>) -> FaultsResult {
    let space = IdSpace::new(cfg.base, cfg.digits).expect("valid space");
    let ids = distinct_ids(space, cfg.members + cfg.joiners, seed);
    let (v, w) = ids.split_at(cfg.members);
    let mut b = SimNetworkBuilder::new(space);
    for id in v {
        b.add_member(*id);
    }
    for id in w {
        b.add_joiner(*id, v[0], 0);
    }
    b.options(ProtocolOptions::new().with_retry(cfg.retry));
    if let Some(path) = trace {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
        b.trace(Box::new(JsonlTrace::new(BufWriter::new(file))));
    }
    let delay = FaultyDelay::new(UniformDelay::new(1_000, 50_000), cfg.drop_p, cfg.dup_p);
    let mut net = b.build(delay, seed);
    let report = net.run();
    assert!(!report.truncated, "fault run did not quiesce");
    FaultsResult {
        delivered: report.delivered,
        dropped: report.dropped,
        duplicated: report.duplicated,
        timers_fired: report.timers_fired,
        traced: report.traced,
        finished_at: report.finished_at,
        all_in_system: net.all_in_system(),
        consistent: net.check_consistency().is_consistent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_recovers() {
        let cfg = FaultsConfig {
            members: 8,
            joiners: 12,
            ..FaultsConfig::default()
        };
        let r = run_faults(&cfg, 7, None);
        assert!(r.all_in_system);
        assert!(r.consistent);
        assert!(r.dropped > 0);
        assert!(r.timers_fired > 0);
        assert_eq!(r.traced, 0);
    }

    #[test]
    fn traced_run_writes_deterministic_jsonl() {
        let cfg = FaultsConfig {
            members: 6,
            joiners: 6,
            ..FaultsConfig::default()
        };
        let dir = std::env::temp_dir();
        let p1 = dir.join("hyperring_faults_trace_1.jsonl");
        let p2 = dir.join("hyperring_faults_trace_2.jsonl");
        let r1 = run_faults(&cfg, 3, Some(&p1));
        let r2 = run_faults(&cfg, 3, Some(&p2));
        assert!(r1.traced > 0);
        assert_eq!(r1, r2);
        let t1 = std::fs::read_to_string(&p1).unwrap();
        let t2 = std::fs::read_to_string(&p2).unwrap();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2, "same seed must give a byte-identical trace");
        assert_eq!(t1.lines().count() as u64, r1.traced);
        assert!(t1.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(p1);
        let _ = std::fs::remove_file(p2);
    }
}
