//! Crash-failure churn: nodes die silently mid-run, the failure detector
//! evicts their (now stale) table entries, and suffix-routed repair
//! queries refill the vacated slots so the survivors re-converge to
//! Definition-3.8 consistency.
//!
//! The paper defers failure recovery to future work (§7); this experiment
//! measures the subsystem this repo adds in its place. Every trial runs
//! two arms over the same workload and crash schedule:
//!
//! * **repair on** — eviction plus [`RepairQry`](hyperring_core::Message)
//!   refill; expected to end consistent among survivors;
//! * **repair off** (the control) — eviction only; expected to end with
//!   false negatives, since nobody refills the vacated slots.
//!
//! Both arms run on the deterministic simulator, so for a fixed seed every
//! metric — including the FNV-1a digest of the full protocol trace — is
//! bit-for-bit reproducible.

use hyperring_core::{FailureDetector, ProtocolOptions};
use hyperring_id::IdSpace;
use hyperring_sim::Time;

use crate::timeline::{Timeline, TimelineScenario};

/// Shape of a crash-churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashChurnConfig {
    /// Identifier base `b`.
    pub base: u16,
    /// Identifier length `d`.
    pub digits: usize,
    /// Size of the initial consistent network `V` (all `in_system` from
    /// t = 0; crash victims are drawn from these).
    pub members: usize,
    /// Concurrent joiners started at t = 0 (they churn *in* while the
    /// victims churn *out*).
    pub joiners: usize,
    /// Fraction of the members crashed (`⌈members · fraction⌉`).
    pub crash_fraction: f64,
    /// Virtual time (µs) at which every victim crashes.
    pub crash_at: Time,
    /// Virtual time (µs) the run is cut off at — must leave room for
    /// detection (`suspicion_threshold` probe intervals) plus repair.
    pub horizon: Time,
    /// Probe interval and suspicion threshold; the `repair` field here is
    /// ignored (each arm of [`run_crashchurn`] sets its own).
    pub fd: FailureDetector,
}

impl Default for CrashChurnConfig {
    fn default() -> Self {
        CrashChurnConfig {
            base: 4,
            digits: 6,
            members: 64,
            joiners: 0,
            crash_fraction: 0.20,
            crash_at: 500_000,
            fd: FailureDetector {
                probe_interval_us: 200_000,
                suspicion_threshold: 3,
                repair: true,
                ..FailureDetector::default()
            },
            horizon: 30_000_000,
        }
    }
}

impl CrashChurnConfig {
    /// Number of victims the crash schedule kills.
    pub fn crashes(&self) -> usize {
        ((self.members as f64) * self.crash_fraction).ceil() as usize
    }
}

/// Outcome of one crash-churn arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashChurnResult {
    /// Nodes crashed mid-run.
    pub crashed: usize,
    /// Live nodes at the end (members − crashed + joiners).
    pub survivors: usize,
    /// Definition-3.8 violations among the survivor tables.
    pub violations: usize,
    /// The reachability-breaking subset of those violations.
    pub false_negatives: usize,
    /// Whether the survivor tables are fully consistent.
    pub consistent: bool,
    /// Survivor table entries still naming a crashed node (0 once the
    /// detector has evicted everything).
    pub dead_refs: usize,
    /// Messages delivered over the whole run.
    pub delivered: u64,
    /// Timers fired (probe ticks plus any retries).
    pub timers_fired: u64,
    /// Virtual time (µs) when the run ended.
    pub finished_at: u64,
    /// Protocol events recorded to the trace.
    pub traced: u64,
    /// FNV-1a digest of the full protocol trace — byte-identical across
    /// reruns of the same seed.
    pub trace_digest: u64,
}

/// Runs one seeded crash-churn trial arm. `repair` selects the arm:
/// `true` enables slot refill after eviction, `false` is the control
/// (detection and eviction only).
///
/// The one-shot schedule is expressed on the [`Timeline`] DSL — joins at
/// t = 0, one crash wave at `crash_at` — and runs through
/// [`TimelineScenario`]. The timeline compiler draws the same workload
/// and the same victims as the bespoke scheduler this experiment
/// originally used, so every metric (including the trace digest) is
/// bit-identical to the pinned pre-DSL results.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no members, or a crash
/// fraction that kills everyone).
pub fn run_crashchurn(cfg: &CrashChurnConfig, seed: u64, repair: bool) -> CrashChurnResult {
    let space = IdSpace::new(cfg.base, cfg.digits).expect("valid space");
    assert!(
        cfg.crashes() < cfg.members,
        "crash fraction {} kills all {} members",
        cfg.crash_fraction,
        cfg.members
    );
    let tl = Timeline::new()
        .at(0)
        .join(cfg.joiners)
        .at(cfg.crash_at)
        .crash(cfg.crash_fraction)
        .horizon(cfg.horizon);
    let r = TimelineScenario::new(space)
        .members(cfg.members)
        .seed(seed)
        .options(ProtocolOptions::new().with_failure_detector(FailureDetector { repair, ..cfg.fd }))
        .run(tl);
    CrashChurnResult {
        crashed: r.crashed,
        survivors: r.survivors,
        violations: r.violations,
        false_negatives: r.false_negatives,
        consistent: r.consistent,
        dead_refs: r.dead_refs,
        delivered: r.delivered,
        timers_fired: r.timers_fired,
        finished_at: r.finished_at,
        traced: r.traced,
        trace_digest: r.trace_digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CrashChurnConfig {
        CrashChurnConfig {
            members: 16,
            crash_at: 100_000,
            fd: FailureDetector {
                probe_interval_us: 100_000,
                suspicion_threshold: 3,
                repair: true,
                ..FailureDetector::default()
            },
            horizon: 5_000_000,
            ..CrashChurnConfig::default()
        }
    }

    #[test]
    fn repair_converges_and_control_does_not() {
        let cfg = small();
        let on = run_crashchurn(&cfg, 5, true);
        assert_eq!(on.crashed, 4);
        assert_eq!(on.survivors, 12);
        assert_eq!(on.dead_refs, 0, "a survivor still stores a crashed node");
        assert!(on.consistent, "{} violations with repair on", on.violations);

        let off = run_crashchurn(&cfg, 5, false);
        assert_eq!(off.dead_refs, 0, "eviction works without repair");
        assert!(
            !off.consistent && off.false_negatives > 0,
            "the control arm should be left with holes"
        );
    }

    #[test]
    fn same_seed_gives_identical_results_and_trace_digest() {
        let cfg = small();
        let a = run_crashchurn(&cfg, 9, true);
        let b = run_crashchurn(&cfg, 9, true);
        assert_eq!(a, b);
        assert!(a.traced > 0);
        let c = run_crashchurn(&cfg, 10, true);
        assert_ne!(a.trace_digest, c.trace_digest, "digest ignores the seed");
    }

    #[test]
    fn joiners_and_crashes_can_overlap() {
        let cfg = CrashChurnConfig {
            joiners: 4,
            // Crash well after the joins quiesce, so repair never needs a
            // still-copying node (concurrent join+crash interleavings are
            // exercised by the engine's proptests).
            crash_at: 2_000_000,
            horizon: 8_000_000,
            ..small()
        };
        let r = run_crashchurn(&cfg, 3, true);
        assert_eq!(r.survivors, 16 - 4 + 4);
        assert!(r.consistent, "{} violations", r.violations);
    }
}
