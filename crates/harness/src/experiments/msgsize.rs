//! §6.2 ablation: how much wire volume the paper's two message-size
//! reductions save, at unchanged correctness.

use hyperring_core::PayloadMode;

use super::{run_fig15b, Fig15bConfig};

/// Bytes sent by joiners under each payload mode, on the same workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgSizeResult {
    /// The workload (payload field is ignored; all three modes run).
    pub config: Fig15bConfig,
    /// Joiner bytes under the base protocol (full tables).
    pub full_bytes: u64,
    /// Joiner bytes with level-restricted `JoinNotiMsg` payloads.
    pub levels_bytes: u64,
    /// Joiner bytes with level restriction + bit-vector-filtered replies.
    pub bitvector_bytes: u64,
    /// Whether all three runs ended consistent (they must).
    pub all_consistent: bool,
}

impl MsgSizeResult {
    /// Fraction of joiner bytes saved by the `Levels` mode.
    pub fn levels_saving(&self) -> f64 {
        1.0 - self.levels_bytes as f64 / self.full_bytes as f64
    }

    /// Fraction of joiner bytes saved by the `BitVector` mode.
    pub fn bitvector_saving(&self) -> f64 {
        1.0 - self.bitvector_bytes as f64 / self.full_bytes as f64
    }
}

/// Runs the same workload under the three §6.2 payload modes.
pub fn run_msgsize_ablation(base: &Fig15bConfig) -> MsgSizeResult {
    let run = |payload: PayloadMode| {
        let cfg = Fig15bConfig { payload, ..*base };
        let r = run_fig15b(&cfg);
        (r.joiner_bytes, r.consistent)
    };
    let (full_bytes, c1) = run(PayloadMode::Full);
    let (levels_bytes, c2) = run(PayloadMode::Levels);
    let (bitvector_bytes, c3) = run(PayloadMode::BitVector);
    MsgSizeResult {
        config: *base,
        full_bytes,
        levels_bytes,
        bitvector_bytes,
        all_consistent: c1 && c2 && c3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_preserve_consistency_and_save_bytes() {
        let base = Fig15bConfig::small(16, 5);
        let r = run_msgsize_ablation(&base);
        assert!(r.all_consistent, "a payload mode broke consistency");
        // Level restriction must strictly reduce joiner bytes (JoinNotiMsg
        // payloads shrink); the bit vector reduces reply bytes received,
        // which show up as *other* nodes' bytes — but the joiners also
        // reply to each other's notifications, so joiner bytes shrink too.
        assert!(
            r.levels_bytes < r.full_bytes,
            "levels: {} !< {}",
            r.levels_bytes,
            r.full_bytes
        );
        assert!(
            r.bitvector_bytes < r.full_bytes,
            "bitvector: {} !< {}",
            r.bitvector_bytes,
            r.full_bytes
        );
        assert!(r.levels_saving() > 0.0 && r.levels_saving() < 1.0);
        assert!(r.bitvector_saving() > 0.0 && r.bitvector_saving() < 1.0);
    }
}
