//! Theorem 4: the expected number of `JoinNotiMsg` sent by a *single*
//! joining node, measured against the closed-form expectation.

use hyperring_analysis::expected_join_noti;
use hyperring_core::{ProtocolOptions, SimNetworkBuilder};
use hyperring_id::IdSpace;
use hyperring_sim::UniformDelay;
use rayon::prelude::*;

use crate::workload::distinct_ids;

/// One network size's measured-vs-analytic comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem4Point {
    /// Network size `n`.
    pub n: usize,
    /// Mean `JoinNotiMsg` over the sampled single joins.
    pub measured: f64,
    /// Theorem 4's `E(J)`.
    pub analytic: f64,
    /// Number of independent single joins sampled.
    pub samples: usize,
}

/// For each `n` in `sizes`, joins `samples` fresh nodes into an `n`-node
/// network **one at a time** (each into an unmodified copy of `V`) and
/// compares the mean `JoinNotiMsg` count with Theorem 4.
///
/// # Panics
///
/// Panics if a join fails to terminate or leaves the network inconsistent.
pub fn run_theorem4(
    b: u16,
    d: usize,
    sizes: &[usize],
    samples: usize,
    seed: u64,
) -> Vec<Theorem4Point> {
    let space = IdSpace::new(b, d).expect("valid space");
    sizes
        .iter()
        .map(|&n| {
            let ids = distinct_ids(space, n + samples, seed ^ (n as u64).wrapping_mul(0x9e37));
            let members = &ids[..n];
            // Each sampled join runs against its own copy of `V` with its
            // own seed, so the samples are independent — fan them across
            // cores. Summing the collected (trial-ordered) counts keeps the
            // result identical to the sequential loop this replaces.
            let counts: Vec<u64> = (0..samples)
                .into_par_iter()
                .map(|s| {
                    let joiner = ids[n + s];
                    let mut builder = SimNetworkBuilder::new(space);
                    builder.options(ProtocolOptions::new());
                    for id in members {
                        builder.add_member(*id);
                    }
                    builder.add_joiner(joiner, members[s % n], 0);
                    let mut net = builder.build(
                        UniformDelay::new(1_000, 50_000),
                        seed.wrapping_add(s as u64),
                    );
                    net.run();
                    assert!(net.all_in_system(), "single join did not terminate");
                    debug_assert!(net.check_consistency().is_consistent());
                    let count = net
                        .joiners()
                        .next()
                        .expect("one joiner")
                        .stats()
                        .join_noti();
                    count
                })
                .collect();
            let total: u64 = counts.iter().sum();
            Theorem4Point {
                n,
                measured: total as f64 / samples as f64,
                analytic: expected_join_noti(b as u32, d as u32, n as u64),
                samples,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tracks_analytic() {
        // Small but meaningful: n = 128/512, b = 16, d = 8, 24 samples.
        let pts = run_theorem4(16, 8, &[128, 512], 24, 11);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.analytic > 0.0);
            // Sampling noise: allow a generous band, but the measurement
            // must be in the right ballpark (the paper's measured averages
            // sit ~25% below the Theorem-5 bound).
            let rel = (p.measured - p.analytic).abs() / p.analytic;
            assert!(
                rel < 0.6,
                "n={}: measured {} vs analytic {}",
                p.n,
                p.measured,
                p.analytic
            );
        }
        // More members to notify at larger n... not monotone in general
        // (scalloping), but both points must be positive and finite.
        assert!(pts.iter().all(|p| p.measured.is_finite()));
    }
}
