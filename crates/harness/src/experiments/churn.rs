//! Churn (extension): alternating waves of concurrent joins and graceful
//! leaves, with a full consistency check after every wave. The join
//! protocol is the paper's; the leave protocol is this repository's
//! extension of it (see `DESIGN.md`).

use hyperring_core::{IncrementalChecker, MessageKind, SimNetworkBuilder, Status};
use hyperring_id::IdSpace;
use hyperring_sim::UniformDelay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::distinct_ids;

/// Per-wave outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveStats {
    /// 1-based wave number.
    pub wave: usize,
    /// Live population after the wave.
    pub population: usize,
    /// Whether the post-wave network passed the consistency checker.
    pub consistent: bool,
    /// Messages delivered during the wave.
    pub messages: u64,
    /// Mean `LeaveNotiMsg + RvNghForgetMsg` sent per leaver this wave
    /// (0 for join waves).
    pub leave_cost: f64,
}

/// Result of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Stats per wave (join waves and leave waves alternate).
    pub waves: Vec<WaveStats>,
    /// Whether every wave ended consistent.
    pub always_consistent: bool,
}

/// Runs `rounds` rounds of (concurrent-join wave, sequential-leave wave)
/// against an initial `n0`-node network.
///
/// # Panics
///
/// Panics if parameters are degenerate (`n0 == 0`, more leaves than
/// population) or if a wave fails to settle.
pub fn run_churn(
    b: u16,
    d: usize,
    n0: usize,
    rounds: usize,
    joins_per_round: usize,
    leaves_per_round: usize,
    seed: u64,
) -> ChurnResult {
    assert!(
        n0 > 0 && leaves_per_round <= n0,
        "degenerate churn parameters"
    );
    let space = IdSpace::new(b, d).expect("valid space");
    let total_ids = n0 + rounds * joins_per_round;
    let ids = distinct_ids(space, total_ids, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4u64);

    let mut tables = hyperring_core::build_consistent_tables(space, &ids[..n0]);
    // One dirty-set checker lives across the whole run: each wave
    // re-verifies only the tables the churn touched (it infers
    // joins/departures from the owner set itself), with every 4th call a
    // scheduled full pass cross-checking the incremental logic.
    let mut checker = IncrementalChecker::new(space).with_full_every(4);
    let mut next_id = n0;
    let mut waves = Vec::new();
    let mut always_consistent = true;
    let mut wave_no = 0;

    for _ in 0..rounds {
        // --- join wave -------------------------------------------------
        wave_no += 1;
        let members: Vec<_> = tables.iter().map(|t| t.owner()).collect();
        let mut builder = SimNetworkBuilder::new(space);
        builder.with_member_tables(tables);
        for k in 0..joins_per_round {
            let gw = members[rng.gen_range(0..members.len())];
            builder.add_joiner(ids[next_id + k], gw, 0);
        }
        next_id += joins_per_round;
        let mut net = builder.build(UniformDelay::new(500, 60_000), seed ^ wave_no as u64);
        let report = net.run();
        assert!(net.all_in_system(), "wave {wave_no}: join did not settle");
        let consistent = checker.check(net.tables_iter()).is_consistent();
        debug_assert_eq!(consistent, net.check_consistency().is_consistent());
        always_consistent &= consistent;
        waves.push(WaveStats {
            wave: wave_no,
            population: net.tables_iter().count(),
            consistent,
            messages: report.delivered,
            leave_cost: 0.0,
        });

        // --- leave wave (sequential departures) ------------------------
        wave_no += 1;
        let live: Vec<_> = net.ids().to_vec();
        let mut victims = Vec::new();
        while victims.len() < leaves_per_round {
            let v = live[rng.gen_range(0..live.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        let mut messages = 0;
        for v in &victims {
            let r = net.depart(v);
            messages = r.delivered;
        }
        let leave_cost: u64 = victims
            .iter()
            .map(|v| {
                let s = net.engine(v).stats();
                s.sent(MessageKind::LeaveNoti) + s.sent(MessageKind::RvNghForget)
            })
            .sum();
        let consistent = checker.check(net.tables_iter()).is_consistent();
        debug_assert_eq!(consistent, net.check_consistency().is_consistent());
        always_consistent &= consistent;
        debug_assert!(net
            .engines()
            .all(|e| matches!(e.status(), Status::InSystem | Status::Departed)));
        waves.push(WaveStats {
            wave: wave_no,
            population: net.tables_iter().count(),
            consistent,
            messages,
            leave_cost: leave_cost as f64 / victims.len() as f64,
        });
        // Ownership hand-off to the next round's builder — the one place a
        // materialized clone is the point, not overhead.
        tables = net.tables();
    }

    ChurnResult {
        waves,
        always_consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_keeps_consistency_throughout() {
        let r = run_churn(8, 5, 24, 3, 8, 6, 42);
        assert!(r.always_consistent);
        assert_eq!(r.waves.len(), 6);
        // Population accounting: +8 then −6 per round.
        assert_eq!(r.waves[0].population, 32);
        assert_eq!(r.waves[1].population, 26);
        assert_eq!(r.waves[5].population, 24 + 3 * 2);
        // Leave waves report a positive mean leave cost.
        assert!(r.waves[1].leave_cost > 0.0);
        assert_eq!(r.waves[0].leave_cost, 0.0);
    }

    #[test]
    fn heavy_churn_small_space() {
        let r = run_churn(4, 6, 12, 4, 10, 10, 7);
        assert!(r.always_consistent);
        assert_eq!(r.waves.last().unwrap().population, 12);
    }
}
