//! Experiment drivers, one per table/figure/claim of the paper's
//! evaluation. Each driver is a pure function from a config to a result
//! struct; the `bin/` targets print the paper-style rows and write CSVs.

mod bootstrap;
mod churn;
mod crashchurn;
mod faults;
mod fig15a;
mod fig15b;
mod lookup;
mod msgsize;
mod occupancy;
mod poisson;
mod scale;
mod stretch;
mod theorem4;

pub use bootstrap::{run_bootstrap, run_bootstrap_traced, BootstrapConfig, BootstrapResult};
pub use churn::{run_churn, ChurnResult, WaveStats};
pub use crashchurn::{run_crashchurn, CrashChurnConfig, CrashChurnResult};
pub use faults::{run_faults, FaultsConfig, FaultsResult};
pub use fig15a::{fig15a_series, Fig15aPoint};
pub use fig15b::{run_fig15b, run_fig15b_trials, DelayKind, Fig15bConfig, Fig15bResult};
pub use lookup::{run_lookup_storm, LookupArm, LookupStormConfig, LookupStormResult};
pub use msgsize::{run_msgsize_ablation, MsgSizeResult};
pub use occupancy::{run_occupancy, OccupancyPoint};
pub use poisson::{poisson_timeline, run_poisson_churn, PoissonChurnConfig, PoissonChurnResult};
pub use scale::{run_scale, ScaleConfig, ScaleResult};
pub use stretch::{run_stretch, StretchResult, StretchStats};
pub use theorem4::{run_theorem4, Theorem4Point};
