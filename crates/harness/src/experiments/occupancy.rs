//! Table occupancy: measured filled entries per neighbor table against
//! the closed-form expectation — the quantity that drives the protocol's
//! *small*-message volume (`RvNghNotiMsg` per copied/installed entry),
//! complementing the paper's big-message analysis of §5.2.
//!
//! Consistency (Definition 3.8) determines *exactly* which entries are
//! non-empty given the population, so occupancy is identical for oracle
//! tables and protocol-built tables — asserted by a test below.

use hyperring_analysis::expected_filled_entries;
use hyperring_core::build_consistent_tables;
use hyperring_id::IdSpace;

use crate::workload::distinct_ids;

/// One measured-vs-analytic occupancy point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyPoint {
    /// Network size.
    pub n: usize,
    /// Mean filled entries per table, measured over all `n` tables.
    pub measured: f64,
    /// The closed-form expectation.
    pub analytic: f64,
    /// Table capacity `d · b`.
    pub capacity: usize,
}

/// Measures mean table occupancy for each size in `sizes`.
///
/// # Panics
///
/// Panics on degenerate parameters.
pub fn run_occupancy(b: u16, d: usize, sizes: &[usize], seed: u64) -> Vec<OccupancyPoint> {
    let space = IdSpace::new(b, d).expect("valid space");
    sizes
        .iter()
        .map(|&n| {
            let ids = distinct_ids(space, n, seed ^ (n as u64) << 3);
            let tables = build_consistent_tables(space, &ids);
            let total: usize = tables.iter().map(|t| t.filled()).sum();
            OccupancyPoint {
                n,
                measured: total as f64 / n as f64,
                analytic: expected_filled_entries(b as u32, d as u32, n as u64),
                capacity: d * b as usize,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::SimNetworkBuilder;
    use hyperring_sim::UniformDelay;

    #[test]
    fn measured_matches_analytic_within_noise() {
        let pts = run_occupancy(16, 8, &[64, 256, 1024], 3);
        for p in &pts {
            let rel = (p.measured - p.analytic).abs() / p.analytic;
            assert!(
                rel < 0.08,
                "n={}: measured {} vs analytic {}",
                p.n,
                p.measured,
                p.analytic
            );
            assert!(p.measured <= p.capacity as f64);
        }
        // Occupancy grows with n.
        assert!(pts[0].measured < pts[2].measured);
    }

    #[test]
    fn protocol_tables_have_oracle_occupancy() {
        // Consistency pins down exactly which entries are filled, so a
        // protocol-built network has the same per-node occupancy as the
        // oracle over the same population.
        let space = IdSpace::new(8, 5).unwrap();
        let ids = distinct_ids(space, 40, 9);
        let oracle = build_consistent_tables(space, &ids);

        let mut b = SimNetworkBuilder::new(space);
        for id in &ids[..25] {
            b.add_member(*id);
        }
        for id in &ids[25..] {
            b.add_joiner(*id, ids[0], 0);
        }
        let mut net = b.build(UniformDelay::new(1_000, 60_000), 4);
        net.run();
        assert!(net.all_in_system());

        let by_owner: std::collections::HashMap<_, usize> =
            oracle.iter().map(|t| (t.owner(), t.filled())).collect();
        for t in net.tables() {
            assert_eq!(
                t.filled(),
                by_owner[&t.owner()],
                "occupancy of {} differs from the oracle",
                t.owner()
            );
        }
    }
}
