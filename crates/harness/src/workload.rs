//! Workload construction shared by all experiments.

use hyperring_id::{IdSpace, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` *distinct* uniformly random identifiers, deterministically
/// from `seed`.
///
/// # Panics
///
/// Panics if the space cannot hold `n` distinct identifiers.
pub fn distinct_ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    if let Some(cap) = space.capacity() {
        assert!(
            (n as u128) <= cap,
            "cannot draw {n} distinct ids from a space of {cap}"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

/// Splits a drawn identifier population into members `V` and joiners `W`
/// and assigns every joiner a random member as gateway (assumption (ii) of
/// §3.1: each joiner knows *some* node in `V`).
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// The identifier space.
    pub space: IdSpace,
    /// Members of the initial consistent network.
    pub members: Vec<NodeId>,
    /// `(joiner, gateway)` pairs; all joins start at t = 0.
    pub joiners: Vec<(NodeId, NodeId)>,
}

impl JoinWorkload {
    /// Builds a workload of `n` members and `m` joiners.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the space is too small for `n + m` ids.
    pub fn generate(space: IdSpace, n: usize, m: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one member");
        let ids = distinct_ids(space, n + m, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let members = ids[..n].to_vec();
        let joiners = ids[n..]
            .iter()
            .map(|&id| (id, members[rng.gen_range(0..n)]))
            .collect();
        JoinWorkload {
            space,
            members,
            joiners,
        }
    }

    /// Total number of nodes (`n + m`).
    pub fn total(&self) -> usize {
        self.members.len() + self.joiners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ids_are_distinct_and_deterministic() {
        let space = IdSpace::new(16, 8).unwrap();
        let a = distinct_ids(space, 500, 42);
        let b = distinct_ids(space, 500, 42);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 500);
        let c = distinct_ids(space, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_gateways_are_members() {
        let space = IdSpace::new(16, 8).unwrap();
        let w = JoinWorkload::generate(space, 50, 20, 7);
        assert_eq!(w.members.len(), 50);
        assert_eq!(w.joiners.len(), 20);
        assert_eq!(w.total(), 70);
        for (j, g) in &w.joiners {
            assert!(w.members.contains(g));
            assert!(!w.members.contains(j));
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn overfull_space_rejected() {
        let space = IdSpace::new(2, 2).unwrap();
        distinct_ids(space, 5, 0);
    }
}
