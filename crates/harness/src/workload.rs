//! Workload construction and the trial runner shared by all experiments.

use hyperring_id::{IdSpace, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Derives the seed of trial `trial` from an experiment's base seed.
///
/// Trial 0 uses the base seed unchanged, so a one-trial run reproduces the
/// single-run experiment exactly; later trials get SplitMix64-separated
/// streams so neighboring trial indices share no low-bit structure.
pub fn trial_seed(base: u64, trial: usize) -> u64 {
    if trial == 0 {
        return base;
    }
    // SplitMix64 finalizer over (base, trial).
    let mut z = base.wrapping_add((trial as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `trials` independent trials of `f`, fanned across cores.
///
/// Trial `k` receives `(k, trial_seed(base_seed, k))`; results come back
/// in trial order regardless of thread count, so the output is
/// *bit-identical* to [`run_trials_sequential`] — parallelism changes
/// wall-clock time only. (Equality holds because each trial derives all
/// of its randomness from its own seed and shares no mutable state.)
pub fn run_trials<R, F>(trials: usize, base_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync + Send,
{
    (0..trials)
        .into_par_iter()
        .map(|k| f(k, trial_seed(base_seed, k)))
        .collect()
}

/// The sequential twin of [`run_trials`]: same trials, same seeds, same
/// order, one core. Kept as the reference the parallel path is tested
/// against, and as the fallback when a caller wants predictable memory
/// use.
pub fn run_trials_sequential<R, F>(trials: usize, base_seed: u64, mut f: F) -> Vec<R>
where
    F: FnMut(usize, u64) -> R,
{
    (0..trials)
        .map(|k| f(k, trial_seed(base_seed, k)))
        .collect()
}

/// Draws `n` *distinct* uniformly random identifiers, deterministically
/// from `seed`.
///
/// # Panics
///
/// Panics if the space cannot hold `n` distinct identifiers.
pub fn distinct_ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    if let Some(cap) = space.capacity() {
        assert!(
            (n as u128) <= cap,
            "cannot draw {n} distinct ids from a space of {cap}"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

/// Splits a drawn identifier population into members `V` and joiners `W`
/// and assigns every joiner a random member as gateway (assumption (ii) of
/// §3.1: each joiner knows *some* node in `V`).
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// The identifier space.
    pub space: IdSpace,
    /// Members of the initial consistent network.
    pub members: Vec<NodeId>,
    /// `(joiner, gateway)` pairs; all joins start at t = 0.
    pub joiners: Vec<(NodeId, NodeId)>,
}

impl JoinWorkload {
    /// Builds a workload of `n` members and `m` joiners.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the space is too small for `n + m` ids.
    pub fn generate(space: IdSpace, n: usize, m: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one member");
        let ids = distinct_ids(space, n + m, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let members = ids[..n].to_vec();
        let joiners = ids[n..]
            .iter()
            .map(|&id| (id, members[rng.gen_range(0..n)]))
            .collect();
        JoinWorkload {
            space,
            members,
            joiners,
        }
    }

    /// Total number of nodes (`n + m`).
    pub fn total(&self) -> usize {
        self.members.len() + self.joiners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ids_are_distinct_and_deterministic() {
        let space = IdSpace::new(16, 8).unwrap();
        let a = distinct_ids(space, 500, 42);
        let b = distinct_ids(space, 500, 42);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 500);
        let c = distinct_ids(space, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_gateways_are_members() {
        let space = IdSpace::new(16, 8).unwrap();
        let w = JoinWorkload::generate(space, 50, 20, 7);
        assert_eq!(w.members.len(), 50);
        assert_eq!(w.joiners.len(), 20);
        assert_eq!(w.total(), 70);
        for (j, g) in &w.joiners {
            assert!(w.members.contains(g));
            assert!(!w.members.contains(j));
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn overfull_space_rejected() {
        let space = IdSpace::new(2, 2).unwrap();
        distinct_ids(space, 5, 0);
    }

    #[test]
    fn trial_zero_keeps_base_seed_and_later_trials_diverge() {
        assert_eq!(trial_seed(2003, 0), 2003);
        let s1 = trial_seed(2003, 1);
        let s2 = trial_seed(2003, 2);
        assert_ne!(s1, 2003);
        assert_ne!(s1, s2);
        // Different bases with the same trial index stay separated.
        assert_ne!(trial_seed(2003, 1), trial_seed(2004, 1));
    }

    #[test]
    fn parallel_trials_are_bit_identical_to_sequential() {
        // Each trial runs a real (small) simulation workload so thread
        // interleaving would show up if any state leaked between trials.
        let space = IdSpace::new(8, 4).unwrap();
        let run = |k: usize, seed: u64| {
            let ids = distinct_ids(space, 12 + k % 3, seed);
            let digest: u64 = ids
                .iter()
                .enumerate()
                .map(|(i, id)| id.to_string().len() as u64 * (i as u64 + 1))
                .sum();
            (k, seed, ids, digest)
        };
        let par = run_trials(16, 2003, run);
        let seq = run_trials_sequential(16, 2003, run);
        assert_eq!(par, seq);
        assert_eq!(par.len(), 16);
        // Trials are in order and carry their own seeds.
        for (k, row) in par.iter().enumerate() {
            assert_eq!(row.0, k);
            assert_eq!(row.1, trial_seed(2003, k));
        }
    }
}
