//! The keyed lookup-storm workload: Zipf/uniform key popularity, compiled
//! storm schedules, and the stretch / hop / load statistics every runner
//! reports through [`LookupStats`].
//!
//! A storm is compiled before it runs ([`StormSchedule::compile`]): the
//! full `(source, key)` draw sequence is materialized from a seed, so two
//! arms (paper-faithful vs adaptive tables) can replay the *identical*
//! schedule and differ only in the tables they route over. Execution
//! ([`run_schedule`]) walks each lookup through
//! [`ObjectStore::root_from_with`], which borrows the network's tables —
//! zero per-lookup clones or allocations — and accumulates per-node
//! forwarding load, hop histograms, and (when a latency oracle is
//! supplied) end-to-end latency stretch against the exact direct delay.

use std::collections::HashMap;

use hyperring_core::DemandProfile;
use hyperring_id::NodeId;
use hyperring_object::ObjectStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Borrowed host-to-host delay oracle handed to [`run_schedule`] when the
/// storm should report latency stretch (without one, only hops and load
/// are measured).
pub type DelayFn<'a> = &'a dyn Fn(&NodeId, &NodeId) -> u64;

/// A Zipf(α) sampler over ranks `0..n` (rank 0 most popular), via inverse
/// CDF over the precomputed normalized weights `1/(k+1)^α`. `α = 0` is the
/// uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite(), "bad exponent {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A fully materialized storm: the source nodes, the key (object)
/// identifiers, and every `(source, key)` draw in firing order. Two runs
/// over the same schedule issue byte-identical lookups — the "identical
/// compiled schedules" both arms of the lookup experiment share.
#[derive(Debug, Clone)]
pub struct StormSchedule {
    /// The lookup sources (live nodes), indexable by the draws.
    pub sources: Vec<NodeId>,
    /// The object identifiers, indexable by the draws; index order is
    /// popularity order under Zipf.
    pub keys: Vec<NodeId>,
    /// `(source index, key index)` per lookup, in firing order.
    pub draws: Vec<(u32, u32)>,
}

impl StormSchedule {
    /// Compiles `lookups` draws: sources uniform over `sources`, keys
    /// Zipf(`exponent`) over `keys` (0 = uniform popularity), all from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` or `keys` is empty.
    pub fn compile(
        sources: Vec<NodeId>,
        keys: Vec<NodeId>,
        lookups: usize,
        exponent: f64,
        seed: u64,
    ) -> Self {
        assert!(!sources.is_empty(), "a storm needs sources");
        assert!(!keys.is_empty(), "a storm needs keys");
        let zipf = Zipf::new(keys.len(), exponent);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = (0..lookups)
            .map(|_| {
                let s = rng.gen_range(0..sources.len()) as u32;
                let k = zipf.sample(&mut rng) as u32;
                (s, k)
            })
            .collect();
        StormSchedule {
            sources,
            keys,
            draws,
        }
    }

    /// Number of scheduled lookups.
    pub fn len(&self) -> usize {
        self.draws.len()
    }

    /// Whether no lookups are scheduled.
    pub fn is_empty(&self) -> bool {
        self.draws.is_empty()
    }
}

/// Latency-stretch percentiles of a storm (routed delay over exact direct
/// delay, per delivered lookup whose direct delay is nonzero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchSummary {
    /// Lookups the stretch sample covers.
    pub samples: usize,
    /// Mean stretch.
    pub mean: f64,
    /// Median stretch.
    pub median: f64,
    /// 95th-percentile stretch.
    pub p95: f64,
    /// 99th-percentile stretch.
    pub p99: f64,
}

/// Per-node forwarding-load summary of a storm. A node's load is the
/// number of lookups it handled as a forwarder or root (the issuing
/// source is not counted); the mean is over **all** storm sources, loaded
/// or not, so `imbalance = max/mean` reflects how far the hottest node
/// sits above a perfectly spread workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Heaviest per-node load.
    pub max: u64,
    /// Mean load over all nodes.
    pub mean: f64,
    /// `max / mean` (1.0 for a perfectly balanced storm; 0 when no load).
    pub imbalance: f64,
    /// Nodes that handled at least one lookup.
    pub loaded_nodes: usize,
}

/// Routing statistics of one keyed lookup storm.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupStats {
    /// Lookups routed.
    pub lookups: usize,
    /// Distinct keys in the schedule.
    pub keys: usize,
    /// Mean overlay hops per lookup.
    pub mean_hops: f64,
    /// Longest path observed.
    pub max_hops: usize,
    /// `hop_histogram[h]` = lookups resolved in exactly `h` hops.
    pub hop_histogram: Vec<u64>,
    /// Latency stretch, when the runner had a latency oracle (topology
    /// runs); `None` under abstract delay models.
    pub stretch: Option<StretchSummary>,
    /// Per-node forwarding load.
    pub load: LoadStats,
}

fn percentile_f64(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Routes every lookup of `schedule` over `store`'s borrowed tables and
/// summarizes hops, load, and (with `latency`) stretch.
///
/// `latency(a, b)` must be the **direct** (shortest-path) delay between
/// nodes; routed delay is summed per hop from the same oracle, so stretch
/// is exactly `Σ hop delays / direct(source, root)`. Lookups whose source
/// already is the root (0 hops) carry no stretch sample.
///
/// With `demand` supplied, every hop is recorded into the
/// [`DemandProfile`] (the adaptive arm's warmup pass). Routing itself
/// never mutates the tables — observation cannot perturb the network.
///
/// # Panics
///
/// Panics if a scheduled source is unknown to `store`.
pub fn run_schedule(
    store: &ObjectStore<'_>,
    schedule: &StormSchedule,
    latency: Option<DelayFn<'_>>,
    mut demand: Option<&mut DemandProfile>,
) -> LookupStats {
    let d = store.space().digit_count();
    let slot_of: HashMap<NodeId, usize> = schedule
        .sources
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let mut load: Vec<u64> = vec![0; schedule.sources.len()];
    let mut hop_histogram: Vec<u64> = vec![0; d + 1];
    let mut hops_total = 0usize;
    let mut max_hops = 0usize;
    let mut stretches: Vec<f64> = Vec::new();
    for &(si, ki) in &schedule.draws {
        let source = schedule.sources[si as usize];
        let key = &schedule.keys[ki as usize];
        let mut routed: u64 = 0;
        let (root, hops) = store.root_from_with(source, key, |h| {
            if let Some(&slot) = slot_of.get(&h.to) {
                load[slot] += 1;
            }
            if let Some(lat) = latency {
                routed += lat(&h.from, &h.to);
            }
            if let Some(dem) = demand.as_deref_mut() {
                dem.record_hop(h.from, h.level, h.digit, source);
            }
        });
        hops_total += hops;
        max_hops = max_hops.max(hops);
        hop_histogram[hops.min(d)] += 1;
        if let Some(lat) = latency {
            let direct = lat(&source, &root);
            if direct > 0 {
                stretches.push(routed as f64 / direct as f64);
            }
        }
    }
    let lookups = schedule.draws.len();
    let stretch = latency.map(|_| {
        stretches.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = stretches.len();
        StretchSummary {
            samples: n,
            mean: if n == 0 {
                1.0
            } else {
                stretches.iter().sum::<f64>() / n as f64
            },
            median: if n == 0 {
                1.0
            } else {
                percentile_f64(&stretches, 50.0)
            },
            p95: if n == 0 {
                1.0
            } else {
                percentile_f64(&stretches, 95.0)
            },
            p99: if n == 0 {
                1.0
            } else {
                percentile_f64(&stretches, 99.0)
            },
        }
    });
    let max = load.iter().copied().max().unwrap_or(0);
    let total: u64 = load.iter().sum();
    let mean = total as f64 / schedule.sources.len() as f64;
    LookupStats {
        lookups,
        keys: schedule.keys.len(),
        mean_hops: if lookups == 0 {
            0.0
        } else {
            hops_total as f64 / lookups as f64
        },
        max_hops,
        hop_histogram,
        stretch,
        load: LoadStats {
            max,
            mean,
            imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            loaded_nodes: load.iter().filter(|&&l| l > 0).count(),
        },
    }
}

/// Derives `count` deterministic object identifiers for a storm, hashed
/// from `tag` (rank order = popularity order under Zipf).
pub fn storm_keys(space: hyperring_id::IdSpace, tag: &str, count: usize) -> Vec<NodeId> {
    (0..count)
        .map(|i| space.id_from_hash(format!("{tag}-{i}").as_bytes()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::build_consistent_tables;
    use hyperring_id::IdSpace;

    fn network(n: usize, seed: u64) -> (IdSpace, Vec<NodeId>, Vec<hyperring_core::NeighborTable>) {
        let space = IdSpace::new(16, 5).unwrap();
        let ids = crate::workload::distinct_ids(space, n, seed);
        let tables = build_consistent_tables(space, &ids);
        (space, ids, tables)
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_and_heavy_alpha_skews() {
        let mut rng = StdRng::seed_from_u64(3);
        let uniform = Zipf::new(10, 0.0);
        let skewed = Zipf::new(10, 1.2);
        let mut ucount = [0usize; 10];
        let mut scount = [0usize; 10];
        for _ in 0..20_000 {
            ucount[uniform.sample(&mut rng)] += 1;
            scount[skewed.sample(&mut rng)] += 1;
        }
        assert!(
            ucount.iter().all(|&c| c > 1_500),
            "uniform draw skewed: {ucount:?}"
        );
        assert!(
            scount[0] > 3 * scount[9],
            "zipf(1.2) rank 0 not dominant: {scount:?}"
        );
        // Every rank remains reachable.
        assert!(scount.iter().all(|&c| c > 0));
    }

    #[test]
    fn schedule_is_deterministic_and_replayable() {
        let (space, ids, tables) = network(24, 5);
        let keys = storm_keys(space, "k", 16);
        let a = StormSchedule::compile(ids.clone(), keys.clone(), 500, 0.8, 42);
        let b = StormSchedule::compile(ids, keys, 500, 0.8, 42);
        assert_eq!(a.draws, b.draws);
        let store = ObjectStore::over(space, &tables);
        let s1 = run_schedule(&store, &a, None, None);
        let s2 = run_schedule(&store, &b, None, None);
        assert_eq!(s1, s2);
        assert_eq!(s1.lookups, 500);
        assert_eq!(s1.hop_histogram.iter().sum::<u64>(), 500);
        assert!(s1.stretch.is_none(), "no oracle, no stretch");
    }

    #[test]
    fn stats_with_latency_oracle_are_sane() {
        let (space, ids, tables) = network(32, 7);
        let keys = storm_keys(space, "obj", 8);
        let schedule = StormSchedule::compile(ids, keys, 800, 1.0, 9);
        let store = ObjectStore::over(space, &tables);
        // Synthetic symmetric latency.
        let lat = |a: &NodeId, b: &NodeId| -> u64 {
            if a == b {
                0
            } else {
                let (x, y) = if a < b { (a, b) } else { (b, a) };
                use std::collections::hash_map::DefaultHasher;
                use std::hash::{Hash, Hasher};
                let mut h = DefaultHasher::new();
                (x, y).hash(&mut h);
                1 + h.finish() % 1000
            }
        };
        let mut demand = DemandProfile::new();
        let stats = run_schedule(&store, &schedule, Some(&lat), Some(&mut demand));
        let st = stats.stretch.expect("oracle supplied");
        assert!(
            st.mean >= 1.0,
            "stretch below 1 impossible, got {}",
            st.mean
        );
        assert!(st.median <= st.p95 && st.p95 <= st.p99);
        assert!(stats.load.imbalance >= 1.0);
        assert_eq!(
            demand.total_hops(),
            stats
                .hop_histogram
                .iter()
                .enumerate()
                .map(|(h, c)| h as u64 * c)
                .sum::<u64>(),
            "every hop recorded in the demand profile"
        );
    }

    #[test]
    fn storms_do_not_perturb_the_tables() {
        let (space, ids, tables) = network(24, 11);
        let digest_before = hyperring_core::tables_digest(&tables);
        let keys = storm_keys(space, "p", 8);
        let schedule = StormSchedule::compile(ids, keys, 400, 0.8, 1);
        let store = ObjectStore::over(space, &tables);
        let mut demand = DemandProfile::new();
        let _ = run_schedule(&store, &schedule, None, Some(&mut demand));
        drop(store);
        assert_eq!(hyperring_core::tables_digest(&tables), digest_before);
    }
}
