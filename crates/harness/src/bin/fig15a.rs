//! Regenerates Figure 15(a): the Theorem-5 upper bound of `E(J)` versus
//! network size `n` for the paper's four parameter combinations.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin fig15a [step]`

use std::path::Path;

use hyperring_harness::experiments::fig15a_series;
use hyperring_harness::{Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let step: u64 = opts.positional(0, 5_000);
    if opts.trials > 1 {
        // The figure is a closed-form bound: no randomness, nothing to
        // average. Accept the flag (every binary does) but run once.
        eprintln!(
            "fig15a is analytic; --trials {} has no effect (running once)",
            opts.trials
        );
    }
    let series = fig15a_series(step);

    let mut t = Table::new([
        "n",
        "m=500,b=16,d=40",
        "m=1000,b=16,d=40",
        "m=500,b=16,d=8",
        "m=1000,b=16,d=8",
    ]);
    for p in &series {
        t.row([
            p.n.to_string(),
            format!("{:.3}", p.m500_d40),
            format!("{:.3}", p.m1000_d40),
            format!("{:.3}", p.m500_d8),
            format!("{:.3}", p.m1000_d8),
        ]);
    }
    println!("Figure 15(a): upper bound of E(J) vs number of nodes n");
    println!("{}", t.render());
    println!("m=1000, b=16, d=40 curve:");
    let curve: Vec<(f64, f64)> = series.iter().map(|p| (p.n as f64, p.m1000_d40)).collect();
    println!("{}", hyperring_harness::report::ascii_chart(&curve, 60, 10));
    hyperring_harness::report::write_csv_or_warn(&t, Path::new("results/fig15a.csv"));
}
