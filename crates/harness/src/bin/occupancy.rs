//! Table occupancy vs the closed-form expectation (small-message volume).
//!
//! Usage: `cargo run --release -p hyperring-harness --bin occupancy [--trials N] [--sequential]`
//!
//! With `--trials N`, the measured column is averaged over `N`
//! independent id populations (fanned across cores); trial 0 keeps the
//! base seed, so `--trials 1` reproduces the plain run exactly.

use std::path::Path;

use hyperring_harness::experiments::run_occupancy;
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let mut t = Table::new(["b", "d", "n", "measured filled", "analytic", "capacity d*b"]);
    for (b, d) in [(16u16, 8usize), (16, 40), (4, 6)] {
        let runs = opts.run(7, |_k, seed| {
            run_occupancy(b, d, &[64, 256, 1024, 4096], seed)
        });
        for (i, p) in runs[0].iter().enumerate() {
            let measured = runs.iter().map(|r| r[i].measured).sum::<f64>() / runs.len() as f64;
            t.row([
                b.to_string(),
                d.to_string(),
                p.n.to_string(),
                format!("{measured:.2}"),
                format!("{:.2}", p.analytic),
                p.capacity.to_string(),
            ]);
        }
    }
    println!("\nNeighbor-table occupancy (drives RvNghNotiMsg volume)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/occupancy.csv"));
}
