//! Table occupancy vs the closed-form expectation (small-message volume).
//!
//! Usage: `cargo run --release -p hyperring-harness --bin occupancy`

use std::path::Path;

use hyperring_harness::experiments::run_occupancy;
use hyperring_harness::{report, Table};

fn main() {
    let mut t = Table::new(["b", "d", "n", "measured filled", "analytic", "capacity d*b"]);
    for (b, d) in [(16u16, 8usize), (16, 40), (4, 6)] {
        for pts in [run_occupancy(b, d, &[64, 256, 1024, 4096], 7)] {
            for p in pts {
                t.row([
                    b.to_string(),
                    d.to_string(),
                    p.n.to_string(),
                    format!("{:.2}", p.measured),
                    format!("{:.2}", p.analytic),
                    p.capacity.to_string(),
                ]);
            }
        }
    }
    println!("\nNeighbor-table occupancy (drives RvNghNotiMsg volume)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/occupancy.csv"));
}
