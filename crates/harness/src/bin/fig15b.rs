//! Regenerates Figure 15(b) and the §5.2 averages table: the cumulative
//! distribution of `JoinNotiMsg` sent per joining node when 1000 nodes
//! join a consistent network concurrently, on an 8320-router transit-stub
//! topology.
//!
//! Usage:
//!   cargo run --release -p hyperring-harness --bin fig15b           # paper scale
//!   cargo run --release -p hyperring-harness --bin fig15b -- --small # quick run
//!
//! `--trials N` runs each configuration `N` times (fanned across cores;
//! all trials share one cached topology), adds one summary row per trial
//! plus a mean row, and plots the CDF of trial 0. `--sequential` runs the
//! trials on one core with identical output.

use std::path::Path;

use hyperring_harness::experiments::{run_fig15b_trials, Fig15bConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let small = opts.has_flag("--small");
    let configs: Vec<Fig15bConfig> = if small {
        vec![Fig15bConfig::small(8, 1), Fig15bConfig::small(40, 1)]
    } else {
        Fig15bConfig::paper_configs().to_vec()
    };

    // The paper's reported numbers for the four full-scale configurations.
    let paper_avgs = [6.117, 6.051, 5.026, 5.399];
    let paper_bounds = [8.001, 8.001, 6.986, 6.986];

    let mut summary = Table::new([
        "config",
        "avg J (measured)",
        "paper avg",
        "Thm5 bound",
        "paper bound",
        "max CpRst+JoinWait",
        "Thm3 bound (d+1)",
        "SpeNoti total",
        "consistent",
    ]);
    let mut cdf_table = Table::new(["config", "J", "cdf"]);
    let mut cdf_curves: Vec<(String, Vec<(u64, f64)>)> = Vec::new();

    for (i, cfg) in configs.iter().enumerate() {
        let label = format!("n={},m={},b={},d={}", cfg.n, cfg.m, cfg.b, cfg.d);
        eprintln!("running {label} …");
        let runs = run_fig15b_trials(cfg, opts.trials, opts.sequential);
        let (paper_avg, paper_bound) = if small {
            ("-".to_string(), "-".to_string())
        } else {
            (
                format!("{:.3}", paper_avgs[i]),
                format!("{:.3}", paper_bounds[i]),
            )
        };
        for (k, r) in runs.iter().enumerate() {
            assert!(r.consistent, "{label}: final network INCONSISTENT");
            assert!(
                r.max_cprst_joinwait <= r.theorem3,
                "{label}: Theorem 3 violated"
            );
            let row_label = if opts.trials > 1 {
                format!("{label} t={k}")
            } else {
                label.clone()
            };
            summary.row([
                row_label,
                format!("{:.3}", r.average()),
                paper_avg.clone(),
                format!("{:.3}", r.bound),
                paper_bound.clone(),
                r.max_cprst_joinwait.to_string(),
                r.theorem3.to_string(),
                r.spe_noti_total.to_string(),
                r.consistent.to_string(),
            ]);
        }
        if opts.trials > 1 {
            let mean = runs.iter().map(|r| r.average()).sum::<f64>() / runs.len() as f64;
            summary.row([
                format!("{label} mean/{}", runs.len()),
                format!("{mean:.3}"),
                paper_avg.clone(),
                format!("{:.3}", runs[0].bound),
                paper_bound.clone(),
                runs.iter()
                    .map(|r| r.max_cprst_joinwait)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                runs[0].theorem3.to_string(),
                runs.iter()
                    .map(|r| r.spe_noti_total)
                    .sum::<u64>()
                    .to_string(),
                "true".to_string(),
            ]);
        }
        let r = &runs[0];
        for (x, f) in r.cdf() {
            cdf_table.row([label.clone(), x.to_string(), format!("{f:.4}")]);
        }
        cdf_curves.push((label, r.cdf()));
    }

    println!("\nFigure 15(b) / §5.2: JoinNotiMsg sent by a joining node");
    println!("{}", summary.render());
    println!("CDF series (one row per distinct J value):");
    println!("{}", cdf_table.render());
    for (label, cdf) in &cdf_curves {
        println!("CDF, {label}:");
        let pts: Vec<(f64, f64)> = cdf.iter().map(|&(x, f)| (x as f64, f)).collect();
        println!("{}", report::ascii_chart(&pts, 60, 10));
    }
    report::write_csv_or_warn(&summary, Path::new("results/fig15b_summary.csv"));
    report::write_csv_or_warn(&cdf_table, Path::new("results/fig15b_cdf.csv"));
}
