//! Theorem 4: the expected number of `JoinNotiMsg` for a *single* join —
//! measured single joins against the closed-form expectation.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin theorem4 [samples]`

use std::path::Path;

use hyperring_harness::experiments::run_theorem4;
use hyperring_harness::{report, Table};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("samples must be an integer"))
        .unwrap_or(48);
    let sizes = [64usize, 128, 256, 512, 1024, 2048];
    eprintln!("sampling {samples} single joins per size …");
    let pts = run_theorem4(16, 8, &sizes, samples, 2003);

    let mut t = Table::new(["n", "measured E(J)", "analytic E(J) (Thm 4)", "rel err"]);
    for p in &pts {
        t.row([
            p.n.to_string(),
            format!("{:.3}", p.measured),
            format!("{:.3}", p.analytic),
            format!("{:.1}%", 100.0 * (p.measured - p.analytic) / p.analytic),
        ]);
    }
    println!("Theorem 4: expected JoinNotiMsg of a single join (b=16, d=8)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/theorem4.csv"));
}
