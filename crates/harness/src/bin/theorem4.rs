//! Theorem 4: the expected number of `JoinNotiMsg` for a *single* join —
//! measured single joins against the closed-form expectation.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin theorem4 [samples] [--trials N] [--sequential]`
//!
//! With `--trials N`, the sweep repeats under `N` independent seeds
//! (fanned across cores) and the measured column becomes the mean over
//! trials. Trial 0 keeps the base seed, so `--trials 1` reproduces the
//! plain run exactly, and `--sequential` never changes the numbers.

use std::path::Path;

use hyperring_harness::experiments::run_theorem4;
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let samples: usize = opts.positional(0, 48);
    let sizes = [64usize, 128, 256, 512, 1024, 2048];
    eprintln!("sampling {samples} single joins per size …");
    if opts.trials > 1 {
        eprintln!("averaging over {} independent trials …", opts.trials);
    }
    let runs = opts.run(2003, |_k, seed| run_theorem4(16, 8, &sizes, samples, seed));

    let mut t = Table::new(["n", "measured E(J)", "analytic E(J) (Thm 4)", "rel err"]);
    for (i, p) in runs[0].iter().enumerate() {
        let measured = runs.iter().map(|r| r[i].measured).sum::<f64>() / runs.len() as f64;
        t.row([
            p.n.to_string(),
            format!("{measured:.3}"),
            format!("{:.3}", p.analytic),
            format!("{:.1}%", 100.0 * (measured - p.analytic) / p.analytic),
        ]);
    }
    println!("Theorem 4: expected JoinNotiMsg of a single join (b=16, d=8)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/theorem4.csv"));
}
