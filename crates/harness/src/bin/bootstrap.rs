//! §6.1 network initialization: build an n-node network from a single
//! node, sequentially, concurrently, and staggered.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin bootstrap [n]`

use std::path::Path;

use hyperring_harness::experiments::{run_bootstrap, BootstrapConfig};
use hyperring_harness::{report, Table};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(256);

    let mut t = Table::new(["mode", "nodes", "consistent", "messages", "virtual time (s)"]);
    for (name, mode) in [
        ("sequential", BootstrapConfig::Sequential),
        ("concurrent", BootstrapConfig::Concurrent),
        (
            "staggered 50ms",
            BootstrapConfig::Staggered { gap_us: 50_000 },
        ),
    ] {
        eprintln!("bootstrapping {n} nodes ({name}) …");
        let r = run_bootstrap(16, 8, n, mode, 11);
        assert!(r.consistent, "{name} bootstrap inconsistent");
        t.row([
            name.to_string(),
            r.nodes.to_string(),
            r.consistent.to_string(),
            r.messages.to_string(),
            format!("{:.3}", r.finished_at as f64 / 1e6),
        ]);
    }
    println!("\n§6.1 network initialization from a single node (b=16, d=8)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/bootstrap.csv"));
}
