//! §6.1 network initialization: build an n-node network from a single
//! node, sequentially, concurrently, and staggered.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin bootstrap [n] [--trials N] [--sequential] [--trace PATH]`
//!
//! With `--trials N`, each mode is re-run under `N` independent seeds
//! (fanned across cores), one row per trial; trial 0 keeps the base seed,
//! so `--trials 1` reproduces the plain run exactly. With `--trace PATH`,
//! the concurrent mode's trial-0 run writes its JSONL protocol trace to
//! `PATH` (deterministic for the fixed seed).

use std::path::Path;

use hyperring_harness::experiments::{run_bootstrap_traced, BootstrapConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let n: usize = opts.positional(0, 256);

    let mut t = Table::new([
        "mode",
        "nodes",
        "consistent",
        "messages",
        "virtual time (s)",
    ]);
    for (name, mode) in [
        ("sequential", BootstrapConfig::Sequential),
        ("concurrent", BootstrapConfig::Concurrent),
        (
            "staggered 50ms",
            BootstrapConfig::Staggered { gap_us: 50_000 },
        ),
    ] {
        eprintln!("bootstrapping {n} nodes ({name}) …");
        let trace = opts.trace.clone();
        let runs = opts.run(11, |k, seed| {
            let path = match (k, mode) {
                (0, BootstrapConfig::Concurrent) => trace.as_deref(),
                _ => None,
            };
            run_bootstrap_traced(16, 8, n, mode, seed, path)
        });
        for (k, r) in runs.iter().enumerate() {
            assert!(r.consistent, "{name} bootstrap inconsistent");
            let row_label = if opts.trials > 1 {
                format!("{name} t={k}")
            } else {
                name.to_string()
            };
            t.row([
                row_label,
                r.nodes.to_string(),
                r.consistent.to_string(),
                r.messages.to_string(),
                format!("{:.3}", r.finished_at as f64 / 1e6),
            ]);
        }
    }
    println!("\n§6.1 network initialization from a single node (b=16, d=8)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/bootstrap.csv"));
}
