//! Verifies Theorem 3 empirically: across workloads, no joining node ever
//! sends more than `d + 1` messages of types `CpRstMsg` + `JoinWaitMsg`.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin theorem3`

use std::path::Path;

use hyperring_harness::experiments::{run_fig15b, DelayKind, Fig15bConfig};
use hyperring_harness::{report, Table};

fn main() {
    let mut t = Table::new(["b", "d", "n", "m", "max CpRst+JoinWait", "bound d+1", "ok"]);
    for (b, d, n, m) in [
        (16u16, 8usize, 256usize, 64usize),
        (16, 40, 256, 64),
        (4, 6, 128, 128),
        (8, 5, 200, 100),
        (2, 12, 64, 64),
    ] {
        let cfg = Fig15bConfig {
            b,
            d,
            n,
            m,
            delay: DelayKind::Uniform,
            seed: 7,
            payload: hyperring_core::PayloadMode::Full,
        };
        let r = run_fig15b(&cfg);
        let ok = r.max_cprst_joinwait <= r.theorem3;
        assert!(ok, "Theorem 3 violated for b={b} d={d}");
        t.row([
            b.to_string(),
            d.to_string(),
            n.to_string(),
            m.to_string(),
            r.max_cprst_joinwait.to_string(),
            r.theorem3.to_string(),
            ok.to_string(),
        ]);
    }
    println!("Theorem 3: CpRstMsg + JoinWaitMsg per join is at most d + 1");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/theorem3.csv"));
}
