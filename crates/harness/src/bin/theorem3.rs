//! Verifies Theorem 3 empirically: across workloads, no joining node ever
//! sends more than `d + 1` messages of types `CpRstMsg` + `JoinWaitMsg`.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin theorem3 [--trials N] [--sequential]`
//!
//! With `--trials N`, each parameter combination is re-run under `N`
//! independent seeds (fanned across cores) and the table reports the max
//! over all trials — a strictly harder test of the bound.

use std::path::Path;

use hyperring_harness::experiments::{run_fig15b, DelayKind, Fig15bConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let mut t = Table::new(["b", "d", "n", "m", "max CpRst+JoinWait", "bound d+1", "ok"]);
    for (b, d, n, m) in [
        (16u16, 8usize, 256usize, 64usize),
        (16, 40, 256, 64),
        (4, 6, 128, 128),
        (8, 5, 200, 100),
        (2, 12, 64, 64),
    ] {
        let cfg = Fig15bConfig {
            b,
            d,
            n,
            m,
            delay: DelayKind::Uniform,
            seed: 7,
            payload: hyperring_core::PayloadMode::Full,
        };
        let runs = opts.run(cfg.seed, |_k, seed| {
            run_fig15b(&Fig15bConfig { seed, ..cfg })
        });
        let max = runs.iter().map(|r| r.max_cprst_joinwait).max().unwrap_or(0);
        let bound = runs[0].theorem3;
        let ok = max <= bound;
        assert!(ok, "Theorem 3 violated for b={b} d={d}");
        t.row([
            b.to_string(),
            d.to_string(),
            n.to_string(),
            m.to_string(),
            max.to_string(),
            bound.to_string(),
            ok.to_string(),
        ]);
    }
    println!("Theorem 3: CpRstMsg + JoinWaitMsg per join is at most d + 1");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/theorem3.csv"));
}
