//! Churn under the paper's join protocol plus the graceful-leave
//! extension: alternating join and leave waves with consistency checked
//! after every wave.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin churn [rounds]`

use std::path::Path;

use hyperring_harness::experiments::run_churn;
use hyperring_harness::{report, Table};

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("rounds must be an integer"))
        .unwrap_or(5);
    eprintln!("running {rounds} rounds of 64-node churn (b=16, d=8, 32 joins / 32 leaves per round) …");
    let r = run_churn(16, 8, 64, rounds, 32, 32, 2003);
    assert!(r.always_consistent, "churn broke consistency");

    let mut t = Table::new(["wave", "kind", "population", "consistent", "messages", "mean leave msgs"]);
    for w in &r.waves {
        t.row([
            w.wave.to_string(),
            if w.leave_cost > 0.0 { "leave" } else { "join" }.to_string(),
            w.population.to_string(),
            w.consistent.to_string(),
            w.messages.to_string(),
            if w.leave_cost > 0.0 {
                format!("{:.1}", w.leave_cost)
            } else {
                "-".into()
            },
        ]);
    }
    println!("\nChurn: joins (paper protocol) + graceful leaves (extension)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/churn.csv"));
}
