//! Churn under the paper's join protocol plus the graceful-leave
//! extension: alternating join and leave waves with consistency checked
//! after every wave.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin churn [rounds] [--trials N] [--sequential]`
//!
//! With `--trials N`, the whole churn run is repeated under `N`
//! independent seeds (fanned across cores); every trial must stay
//! consistent, the wave table shown is trial 0's, and a per-trial summary
//! table is appended. Trial 0 keeps the base seed, so `--trials 1`
//! reproduces the plain run exactly.

use std::path::Path;

use hyperring_harness::experiments::run_churn;
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let rounds: usize = opts.positional(0, 5);
    eprintln!(
        "running {rounds} rounds of 64-node churn (b=16, d=8, 32 joins / 32 leaves per round) …"
    );
    let runs = opts.run(2003, |_k, seed| run_churn(16, 8, 64, rounds, 32, 32, seed));
    for r in &runs {
        assert!(r.always_consistent, "churn broke consistency");
    }
    let r = &runs[0];

    let mut t = Table::new([
        "wave",
        "kind",
        "population",
        "consistent",
        "messages",
        "mean leave msgs",
    ]);
    for w in &r.waves {
        t.row([
            w.wave.to_string(),
            if w.leave_cost > 0.0 { "leave" } else { "join" }.to_string(),
            w.population.to_string(),
            w.consistent.to_string(),
            w.messages.to_string(),
            if w.leave_cost > 0.0 {
                format!("{:.1}", w.leave_cost)
            } else {
                "-".into()
            },
        ]);
    }
    println!("\nChurn: joins (paper protocol) + graceful leaves (extension)");
    println!("{}", t.render());
    if opts.trials > 1 {
        let mut per_trial = Table::new(["trial", "waves", "always consistent", "messages"]);
        for (k, r) in runs.iter().enumerate() {
            per_trial.row([
                k.to_string(),
                r.waves.len().to_string(),
                r.always_consistent.to_string(),
                r.waves.iter().map(|w| w.messages).sum::<u64>().to_string(),
            ]);
        }
        println!("Per-trial summary ({} trials):", runs.len());
        println!("{}", per_trial.render());
    }
    report::write_csv_or_warn(&t, Path::new("results/churn.csv"));
}
