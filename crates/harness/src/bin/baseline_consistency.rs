//! The §1 comparison as an experiment: optimistic (Pastry-style) joins
//! versus the paper's protocol, measuring table-consistency violations as
//! concurrency grows.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin baseline_consistency [seeds] [--trials N] [--sequential]`
//!
//! The per-seed runs (seeds `0..seeds`) are fanned across cores and
//! aggregated in seed order, so the output never depends on scheduling;
//! `--sequential` forces one core. `--trials N` is this binary's
//! repetition knob spelled the uniform way: it overrides `[seeds]`.

use std::path::Path;

use hyperring_harness::workload::JoinWorkload;
use hyperring_harness::{report, Scenario, Table, TrialOpts};
use hyperring_id::IdSpace;

fn main() {
    let opts = TrialOpts::from_env();
    let seeds: u64 = if opts.trials > 1 {
        opts.trials as u64
    } else {
        opts.positional(0, 10)
    };
    let space = IdSpace::new(4, 6).expect("valid space");
    let n = 16;

    let mut t = Table::new([
        "m (concurrent joins)",
        "optimistic: broken runs",
        "optimistic: violations",
        "optimistic: unreachable pairs",
        "paper: broken runs",
        "paper: violations",
    ]);
    for m in [1usize, 4, 16, 48] {
        eprintln!("m = {m}: {seeds} seeds of each protocol …");
        let per_seed = opts.map_indexed(seeds as usize, |s| {
            let seed = s as u64;
            let w = JoinWorkload::generate(space, n, m, seed);
            let o = Scenario::new(space)
                .workload(w.clone())
                .seed(seed)
                .optimistic()
                .run_sim();
            let p = Scenario::new(space).workload(w).seed(seed).run_sim();
            (
                u64::from(!o.consistent()),
                o.report.violations().len() as u64,
                o.unreachable_pairs as u64,
                u64::from(!p.consistent()),
                p.report.violations().len() as u64,
            )
        });
        let (mut ob, mut ov, mut ou) = (0u64, 0u64, 0u64);
        let (mut pb, mut pv) = (0u64, 0u64);
        for (b, v, u, b2, v2) in &per_seed {
            ob += b;
            ov += v;
            ou += u;
            pb += b2;
            pv += v2;
        }
        assert_eq!(pb, 0, "the paper's protocol must never break");
        t.row([
            m.to_string(),
            format!("{ob}/{seeds}"),
            ov.to_string(),
            ou.to_string(),
            format!("{pb}/{seeds}"),
            pv.to_string(),
        ]);
    }
    println!("\nOptimistic (Pastry-style) join vs the paper's protocol");
    println!("(b=4, d=6, n={n} members; all joins start at t=0)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/baseline_consistency.csv"));
}
