//! Concurrent joins over a lossy network, recovered by timer retries.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin faultsim
//! [joiners] [drop_pct] [dup_pct] [--trials N] [--sequential] [--trace PATH]`
//!
//! Each trial runs `joiners` concurrent joins into a 16-member network
//! while every message is dropped with probability `drop_pct`% (default
//! 10) and duplicated with probability `dup_pct`% (default 2). The rows
//! show how many losses the retry timers had to repair; consistency
//! (Definition 3.8) must hold in every trial. With `--trace PATH`, trial
//! 0 additionally writes its full JSONL protocol trace — deterministic
//! for the fixed seed — to `PATH`.

use std::path::Path;

use hyperring_harness::experiments::{run_faults, FaultsConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let joiners: usize = opts.positional(0, 48);
    let drop_pct: u32 = opts.positional(1, 10);
    let dup_pct: u32 = opts.positional(2, 2);
    let cfg = FaultsConfig {
        joiners,
        drop_p: f64::from(drop_pct) / 100.0,
        dup_p: f64::from(dup_pct) / 100.0,
        ..FaultsConfig::default()
    };

    eprintln!(
        "joining {joiners} nodes through {}% drop / {}% duplication …",
        drop_pct, dup_pct
    );
    let trace = opts.trace.clone();
    let results = opts.run(23, |k, seed| {
        let path = if k == 0 { trace.as_deref() } else { None };
        run_faults(&cfg, seed, path)
    });

    let mut t = Table::new([
        "trial",
        "delivered",
        "dropped",
        "duplicated",
        "timer fires",
        "all in system",
        "consistent",
        "virtual time (s)",
    ]);
    for (k, r) in results.iter().enumerate() {
        assert!(r.all_in_system, "trial {k}: a joiner stalled");
        assert!(r.consistent, "trial {k}: tables inconsistent");
        t.row([
            k.to_string(),
            r.delivered.to_string(),
            r.dropped.to_string(),
            r.duplicated.to_string(),
            r.timers_fired.to_string(),
            r.all_in_system.to_string(),
            r.consistent.to_string(),
            format!("{:.3}", r.finished_at as f64 / 1e6),
        ]);
    }
    println!(
        "\nfault injection: 16 members + {joiners} concurrent joiners, \
         drop {drop_pct}%, duplicate {dup_pct}% (b=4, d=6)"
    );
    println!("{}", t.render());
    if let Some(path) = &opts.trace {
        println!(
            "trial 0 trace: {} ({} events)",
            path.display(),
            results[0].traced
        );
    }
    report::write_csv_or_warn(&t, Path::new("results/faultsim.csv"));
}
