//! Heavy-traffic lookup storms: paper-faithful vs adaptive
//! proximity-aware neighbor selection over identical compiled schedules
//! (extension; the paper's P2 property under load).
//!
//! Usage: `cargo run --release -p hyperring-harness --bin lookup
//! [--sizes "256,1024"] [--lookups N] [--keys K] [--zipf A]
//! [--sample S] [--min-traffic T] [--seed SEED] [--paper-topology]
//! [--smoke] [--audit] [--trials N] [--sequential]`
//!
//! Per overlay size, both arms replay the same uniform and Zipf storm
//! schedules; the table reports latency stretch, hop counts, and load
//! imbalance per `(n, arm, distribution)` row. `--smoke` shrinks
//! everything for CI; `--audit` additionally asserts the acceptance
//! properties: the adaptive arm strictly reduces mean stretch under both
//! distributions, and the measured storms leave both arms' tables
//! byte-identical (digest-stable).

use std::path::Path;

use hyperring_harness::experiments::{run_lookup_storm, LookupStormConfig, LookupStormResult};
use hyperring_harness::lookup::LookupStats;
use hyperring_harness::{report, Table, TrialOpts};

fn rows_for(t: &mut Table, n: usize, arm: &str, dist: &str, s: &LookupStats, promoted: usize) {
    let st = s.stretch.expect("topology runs always have an oracle");
    t.row([
        n.to_string(),
        arm.to_string(),
        dist.to_string(),
        s.lookups.to_string(),
        format!("{:.4}", st.mean),
        format!("{:.4}", st.median),
        format!("{:.4}", st.p95),
        format!("{:.3}", s.mean_hops),
        s.max_hops.to_string(),
        s.load.max.to_string(),
        format!("{:.2}", s.load.mean),
        format!("{:.3}", s.load.imbalance),
        promoted.to_string(),
    ]);
}

fn audit(r: &LookupStormResult) {
    for dist in ["uniform", "zipf"] {
        let (b, a) = match dist {
            "uniform" => (&r.baseline.uniform, &r.adaptive.uniform),
            _ => (&r.baseline.zipf, &r.adaptive.zipf),
        };
        let (bs, as_) = (b.stretch.unwrap(), a.stretch.unwrap());
        assert!(
            as_.mean < bs.mean,
            "audit: adaptive {dist} stretch {:.4} !< baseline {:.4} at n={}",
            as_.mean,
            bs.mean,
            r.n
        );
        assert_eq!(
            b.lookups, a.lookups,
            "audit: arms routed different schedule sizes"
        );
    }
    assert!(r.adaptive.promoted > 0, "audit: promotion never fired");
}

fn main() {
    let opts = TrialOpts::from_env();
    let smoke = opts.has_flag("--smoke");
    let do_audit = opts.has_flag("--audit");
    let sizes: Vec<usize> = opts
        .named(
            "--sizes",
            if smoke {
                "64".into()
            } else {
                "256,1024".to_string()
            },
        )
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes wants integers"))
        .collect();
    let lookups: usize = opts.named("--lookups", if smoke { 1_500 } else { 20_000 });
    let keys: usize = opts.named("--keys", if smoke { 32 } else { 256 });
    let zipf: f64 = opts.named("--zipf", 0.9);
    let sample: usize = opts.named("--sample", 3);
    let min_traffic: u64 = opts.named("--min-traffic", 4);
    let seed: u64 = opts.named("--seed", 7);
    let paper_topology = opts.has_flag("--paper-topology");

    eprintln!(
        "lookup storms over n ∈ {sizes:?} ({lookups} lookups × 2 distributions × 2 arms per n) …"
    );
    let results: Vec<LookupStormResult> = opts.map_indexed(sizes.len(), |i| {
        run_lookup_storm(&LookupStormConfig {
            b: 16,
            d: if smoke { 6 } else { 8 },
            n: sizes[i],
            keys,
            lookups,
            zipf_exponent: zipf,
            paper_topology,
            promote_min_traffic: min_traffic,
            proximity_sample: sample,
            seed,
        })
    });

    let mut t = Table::new([
        "n",
        "arm",
        "distribution",
        "lookups",
        "mean_stretch",
        "median_stretch",
        "p95_stretch",
        "mean_hops",
        "max_hops",
        "load_max",
        "load_mean",
        "load_imbalance",
        "promoted",
    ]);
    for r in &results {
        rows_for(&mut t, r.n, "baseline", "uniform", &r.baseline.uniform, 0);
        rows_for(&mut t, r.n, "baseline", "zipf", &r.baseline.zipf, 0);
        rows_for(
            &mut t,
            r.n,
            "adaptive",
            "uniform",
            &r.adaptive.uniform,
            r.adaptive.promoted,
        );
        rows_for(
            &mut t,
            r.n,
            "adaptive",
            "zipf",
            &r.adaptive.zipf,
            r.adaptive.promoted,
        );
    }
    println!(
        "\nLookup storms, identical schedules per n (zipf α={zipf}, {keys} keys, seed {seed})"
    );
    println!("{}", t.render());
    for r in &results {
        let b = r.baseline.zipf.stretch.unwrap().mean;
        let a = r.adaptive.zipf.stretch.unwrap().mean;
        println!(
            "n={:>5}  zipf mean stretch {:.4} -> {:.4}  ({:+.1}%)  promotions {}",
            r.n,
            b,
            a,
            (a / b - 1.0) * 100.0,
            r.adaptive.promoted
        );
    }
    report::write_csv_or_warn(&t, Path::new("results/lookup.csv"));

    if do_audit {
        for r in &results {
            audit(r);
        }
        eprintln!("audit: adaptive beat baseline stretch on every size; schedules identical");
    }
}
