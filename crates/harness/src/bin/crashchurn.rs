//! Crash churn: silent mid-run crashes, detector-driven eviction, and
//! suffix-routed table repair among the survivors.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin crashchurn
//! [--n MEMBERS] [--crash-pct PCT] [--trials N] [--sequential]`
//!
//! Each trial crashes `PCT`% (default 20) of an `MEMBERS`-node (default
//! 64) consistent network at t = 0.5 s and runs both arms over the same
//! schedule: repair **on** (must re-converge to Definition-3.8
//! consistency among survivors) and repair **off** (the control, expected
//! to be left with false negatives). Results go to
//! `results/crashchurn.csv` and `results/crashchurn.json`; the trace
//! digest column is byte-stable per seed.

use std::path::Path;

use hyperring_harness::experiments::{run_crashchurn, CrashChurnConfig, CrashChurnResult};
use hyperring_harness::{report, Table, TrialOpts};

fn json_arm(r: &CrashChurnResult) -> String {
    format!(
        "{{\"crashed\":{},\"survivors\":{},\"violations\":{},\"false_negatives\":{},\
         \"consistent\":{},\"dead_refs\":{},\"delivered\":{},\"timers_fired\":{},\
         \"finished_at_us\":{},\"traced\":{},\"trace_digest\":\"{:016x}\"}}",
        r.crashed,
        r.survivors,
        r.violations,
        r.false_negatives,
        r.consistent,
        r.dead_refs,
        r.delivered,
        r.timers_fired,
        r.finished_at,
        r.traced,
        r.trace_digest,
    )
}

fn main() {
    let opts = TrialOpts::from_env();
    let members: usize = opts.named("--n", 64);
    let crash_pct: u32 = opts.named("--crash-pct", 20);
    let cfg = CrashChurnConfig {
        members,
        crash_fraction: f64::from(crash_pct) / 100.0,
        ..CrashChurnConfig::default()
    };

    eprintln!(
        "crashing {} of {members} members mid-run ({} trials, repair on + control) …",
        cfg.crashes(),
        opts.trials
    );
    let results = opts.run(41, |_, seed| {
        (
            seed,
            run_crashchurn(&cfg, seed, true),
            run_crashchurn(&cfg, seed, false),
        )
    });

    let mut t = Table::new([
        "trial",
        "crashed",
        "survivors",
        "repair: consistent",
        "repair: dead refs",
        "repair: trace digest",
        "control: false negatives",
        "control: consistent",
        "virtual time (s)",
    ]);
    let mut json_rows = Vec::new();
    for (k, (seed, on, off)) in results.iter().enumerate() {
        assert!(
            on.consistent,
            "trial {k}: survivors inconsistent with repair on ({} violations)",
            on.violations
        );
        assert_eq!(on.dead_refs, 0, "trial {k}: a crashed node is still stored");
        t.row([
            k.to_string(),
            on.crashed.to_string(),
            on.survivors.to_string(),
            on.consistent.to_string(),
            on.dead_refs.to_string(),
            format!("{:016x}", on.trace_digest),
            off.false_negatives.to_string(),
            off.consistent.to_string(),
            format!("{:.3}", on.finished_at as f64 / 1e6),
        ]);
        json_rows.push(format!(
            "{{\"trial\":{k},\"seed\":{seed},\"repair\":{},\"control\":{}}}",
            json_arm(on),
            json_arm(off)
        ));
    }
    println!(
        "\ncrash churn: {} of {members} members crash at t=0.5s \
         (b=4, d=6; probe {} ms, threshold {})",
        cfg.crashes(),
        cfg.fd.probe_interval_us / 1_000,
        cfg.fd.suspicion_threshold
    );
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/crashchurn.csv"));
    let json = format!("[\n  {}\n]\n", json_rows.join(",\n  "));
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/crashchurn.json", &json))
    {
        eprintln!("warning: could not write results/crashchurn.json: {e}");
    } else {
        println!("wrote results/crashchurn.json");
    }
}
