//! Footnote 8 quantified: how often is `SpeNotiMsg` actually sent? The
//! paper observed it is "rarely sent"; this sweep measures the rate per
//! join across identifier densities and concurrency levels.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin footnote8 [seeds] [--trials N] [--sequential]`
//!
//! The per-row runs (seeds `100..100+seeds`) are fanned across cores and
//! summed in seed order, so the output never depends on scheduling;
//! `--sequential` forces one core. `--trials N` is this binary's
//! repetition knob spelled the uniform way: it overrides `[seeds]`.

use std::path::Path;

use hyperring_harness::experiments::{run_fig15b, DelayKind, Fig15bConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let seeds: u64 = if opts.trials > 1 {
        opts.trials as u64
    } else {
        opts.positional(0, 5)
    };

    let mut t = Table::new([
        "b",
        "d",
        "n",
        "m",
        "joins total",
        "SpeNotiMsg total",
        "rate per join",
    ]);
    for (b, d, n, m) in [
        (16u16, 8usize, 256usize, 64usize), // paper-like density
        (4, 8, 64, 64),                     // denser suffix collisions
        (2, 10, 16, 48),                    // binary ids: maximal dependence
        (2, 8, 4, 32),                      // tiny space, heavy contention
    ] {
        let spe: u64 = opts
            .map_indexed(seeds as usize, |s| {
                let cfg = Fig15bConfig {
                    b,
                    d,
                    n,
                    m,
                    delay: DelayKind::Uniform,
                    seed: 100 + s as u64,
                    payload: hyperring_core::PayloadMode::Full,
                };
                let r = run_fig15b(&cfg);
                assert!(r.consistent);
                r.spe_noti_total
            })
            .iter()
            .sum();
        let joins = seeds * m as u64;
        t.row([
            b.to_string(),
            d.to_string(),
            n.to_string(),
            m.to_string(),
            joins.to_string(),
            spe.to_string(),
            format!("{:.4}", spe as f64 / joins as f64),
        ]);
    }
    println!("\nFootnote 8: SpeNotiMsg frequency (repair path) per join");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/footnote8.csv"));
}
