//! Steady-state Poisson churn over the timeline DSL: continuous
//! arrivals/departures at a node-lifetime half-life, with per-slot
//! time-to-repair and consistency-recovery CDFs.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin timeline
//! [--n MEMBERS] [--half-lives S1,S2,..] [--seed SEED] [--smoke]
//! [--audit]`
//!
//! Sweeps the given half-life settings (virtual seconds; default
//! `20,40,80` — at the default 14 s churn window these turn over roughly
//! 55%, 27%, and 13% of the membership) over an `MEMBERS`-node (default
//! 256) network. Each
//! half-life runs two arms on the identical compiled schedule: the
//! hardened repair path (bounded in-flight queries, exponential re-query
//! pacing, retry backoff with jitter, join gateway fallback) and the
//! eviction-only control. `--smoke` shrinks everything for CI;
//! `--audit` additionally asserts the acceptance property that the
//! repair arm is consistent at every settled checkpoint where the
//! control arm is not. Results go to `results/timeline.csv` and
//! `BENCH_churn.json`; trace digests are byte-stable per seed.

use std::path::Path;

use hyperring_harness::experiments::{run_poisson_churn, PoissonChurnConfig, PoissonChurnResult};
use hyperring_harness::metrics::percentile;
use hyperring_harness::{report, Table, TrialOpts};

fn pcts(samples: &[u64]) -> (u64, u64, u64) {
    (
        percentile(samples, 50.0).unwrap_or(0),
        percentile(samples, 95.0).unwrap_or(0),
        percentile(samples, 99.0).unwrap_or(0),
    )
}

fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e3)
}

fn json_arm(r: &PoissonChurnResult) -> String {
    let (tc50, tc95, tc99) = pcts(&r.ttr_from_crash_us);
    let (te50, te95, te99) = pcts(&r.ttr_from_eviction_us);
    let (rc50, rc95, rc99) = pcts(&r.recovery_us);
    let checkpoints: Vec<String> = r
        .checkpoints
        .iter()
        .map(|c| {
            format!(
                "{{\"at_us\":{},\"live\":{},\"violations\":{},\"consistent\":{}}}",
                c.at, c.live, c.violations, c.consistent
            )
        })
        .collect();
    format!(
        "{{\"crashed\":{},\"joins\":{},\"crash_capped\":{},\"survivors\":{},\
         \"consistent\":{},\"false_negatives\":{},\"dead_refs\":{},\
         \"evicted\":{},\"repaired\":{},\
         \"ttr_from_crash_us\":{{\"samples\":{},\"p50\":{tc50},\"p95\":{tc95},\"p99\":{tc99}}},\
         \"ttr_from_eviction_us\":{{\"samples\":{},\"p50\":{te50},\"p95\":{te95},\"p99\":{te99}}},\
         \"recovery_us\":{{\"samples\":{},\"p50\":{rc50},\"p95\":{rc95},\"p99\":{rc99}}},\
         \"delivered\":{},\"timers_fired\":{},\"traced\":{},\"trace_digest\":\"{:016x}\",\
         \"checkpoints\":[{}]}}",
        r.crashed,
        r.joins,
        r.crash_capped,
        r.survivors,
        r.consistent,
        r.false_negatives,
        r.dead_refs,
        r.evicted,
        r.repaired,
        r.ttr_from_crash_us.len(),
        r.ttr_from_eviction_us.len(),
        r.recovery_us.len(),
        r.delivered,
        r.timers_fired,
        r.traced,
        r.trace_digest,
        checkpoints.join(","),
    )
}

fn main() {
    let opts = TrialOpts::from_env();
    let smoke = opts.has_flag("--smoke");
    let audit = opts.has_flag("--audit");
    let members: usize = opts.named("--n", if smoke { 32 } else { 256 });
    let seed: u64 = opts.named("--seed", 43);
    let half_lives_s: Vec<f64> = opts
        .named(
            "--half-lives",
            if smoke {
                "8".to_string()
            } else {
                "20,40,80".to_string()
            },
        )
        .split(',')
        .map(|s| s.trim().parse().expect("half-life must be a number"))
        .collect();
    let (churn_until, horizon, checkpoint_every) = if smoke {
        (4_000_000, 12_000_000, 2_000_000)
    } else {
        (14_000_000, 30_000_000, 2_000_000)
    };

    eprintln!(
        "steady-state Poisson churn over {members} members, half-lives {half_lives_s:?} s \
         (churn to t={}s, horizon {}s) …",
        churn_until / 1_000_000,
        horizon / 1_000_000
    );
    let arms: Vec<(f64, PoissonChurnResult, PoissonChurnResult)> =
        opts.map_indexed(half_lives_s.len(), |i| {
            let cfg = PoissonChurnConfig {
                members,
                half_life_us: (half_lives_s[i] * 1e6) as u64,
                churn_until,
                horizon,
                checkpoint_every,
                ..PoissonChurnConfig::default()
            };
            (
                half_lives_s[i],
                run_poisson_churn(&cfg, seed, true),
                run_poisson_churn(&cfg, seed, false),
            )
        });

    let mut t = Table::new([
        "half-life (s)",
        "arm",
        "crashed",
        "joins",
        "survivors",
        "consistent",
        "dead refs",
        "ckpts ok",
        "repaired",
        "TTR p50 (ms)",
        "TTR p95 (ms)",
        "TTR p99 (ms)",
        "recovery p50 (ms)",
        "recovery p99 (ms)",
        "trace digest",
    ]);
    let mut json_rows = Vec::new();
    for (hl, on, off) in &arms {
        if audit {
            assert_eq!(on.dead_refs, 0, "hl={hl}: a crashed node is still stored");
            assert!(
                on.consistent,
                "hl={hl}: repair arm inconsistent at the end ({} violations)",
                on.violations
            );
            assert!(
                !off.consistent && off.false_negatives > 0,
                "hl={hl}: the control arm should be left with holes"
            );
            // The acceptance property: wherever the settled control arm is
            // inconsistent, the repair arm must have recovered. "Settled"
            // skips checkpoints inside the detection window right after a
            // disruption, where neither arm can have noticed yet.
            for (r, c) in on.checkpoints.iter().zip(&off.checkpoints) {
                if c.at >= churn_until + 4_000_000 && !c.consistent {
                    assert!(
                        r.consistent,
                        "hl={hl}: control inconsistent at t={} but repair did not recover",
                        c.at
                    );
                }
            }
        }
        for (name, r) in [("repair", on), ("control", off)] {
            let (p50, p95, p99) = pcts(&r.ttr_from_crash_us);
            let (r50, _, r99) = pcts(&r.recovery_us);
            let ckpts_ok = r.checkpoints.iter().filter(|c| c.consistent).count();
            t.row([
                format!("{hl}"),
                name.to_string(),
                r.crashed.to_string(),
                r.joins.to_string(),
                r.survivors.to_string(),
                r.consistent.to_string(),
                r.dead_refs.to_string(),
                format!("{ckpts_ok}/{}", r.checkpoints.len()),
                r.repaired.to_string(),
                ms(p50),
                ms(p95),
                ms(p99),
                ms(r50),
                ms(r99),
                format!("{:016x}", r.trace_digest),
            ]);
        }
        json_rows.push(format!(
            "{{\"half_life_s\":{hl},\"seed\":{seed},\"repair\":{},\"control\":{}}}",
            json_arm(on),
            json_arm(off)
        ));
    }
    println!(
        "\nPoisson churn: {members} members, arrivals = departures = n·ln2/t½ \
         (b=4, d=6; probe 200 ms, threshold 3; churn window {}s, horizon {}s)",
        churn_until / 1_000_000,
        horizon / 1_000_000
    );
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/timeline.csv"));
    let json = format!(
        "{{\n\"config\":{{\"members\":{members},\"seed\":{seed},\"churn_until_us\":{churn_until},\
         \"horizon_us\":{horizon},\"checkpoint_every_us\":{checkpoint_every},\"smoke\":{smoke}}},\n\
         \"sweeps\":[\n  {}\n]\n}}\n",
        json_rows.join(",\n  ")
    );
    if let Err(e) = std::fs::write("BENCH_churn.json", &json) {
        eprintln!("warning: could not write BENCH_churn.json: {e}");
    } else {
        println!("wrote BENCH_churn.json");
    }
    if audit {
        println!("audit: repair arm recovered at every settled checkpoint the control missed");
    }
}
