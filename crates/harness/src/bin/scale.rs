//! Large-n scaling of the sharded, arena-backed simulation core: batched
//! concurrent bootstrap throughput (nodes/sec), peak RSS, and
//! sequential-vs-sharded digest parity.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin scale [n] [--batch B] [--shards "1,4"] [--smoke] [--parity]`
//!
//! * `n` — total nodes to bootstrap (default 4096; `--smoke` forces 512);
//! * `--batch B` — joiners per concurrent wave (default 256);
//! * `--shards LIST` — comma-separated shard counts, one row each
//!   (default `1,4`);
//! * `--parity` — after each sharded row, re-run on one shard and check
//!   the table digests match (the determinism audit; doubles runtime);
//! * `--smoke` — small fast configuration for CI.
//!
//! Shard speedups are bounded by the core count, which is printed with
//! every row: on a single-core host the sharded scheduler degrades to
//! ordered sequential delivery and the honest ratio is ≈1×.

use std::path::Path;

use hyperring_harness::experiments::{run_scale, ScaleConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let smoke = opts.has_flag("--smoke");
    let n: usize = if smoke { 512 } else { opts.positional(0, 4096) };
    let batch: usize = opts.named("--batch", if smoke { 64 } else { 256 });
    let shards_arg: String = opts.named("--shards", "1,4".to_string());
    let parity = opts.has_flag("--parity");
    let shard_counts: Vec<usize> = shards_arg
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes integers"))
        .collect();

    let mut t = Table::new([
        "shards",
        "nodes",
        "batch",
        "wall (s)",
        "nodes/sec",
        "peak RSS (MiB)",
        "cores",
        "digest",
        "consistent",
        "parity",
    ]);
    let mut digests = Vec::new();
    for &shards in &shard_counts {
        eprintln!("bootstrapping {n} nodes on {shards} shard(s), waves of {batch} …");
        let mut cfg = ScaleConfig::new(n, batch, shards);
        cfg.parity = parity;
        let r = run_scale(&cfg);
        assert!(r.consistent, "{shards}-shard bootstrap inconsistent");
        if let Some(ok) = r.parity_ok {
            assert!(ok, "{shards}-shard digest diverged from 1-shard");
        }
        digests.push(r.digest);
        t.row([
            shards.to_string(),
            r.nodes.to_string(),
            batch.to_string(),
            format!("{:.2}", r.wall_secs),
            format!("{:.0}", r.nodes_per_sec),
            format!("{:.1}", r.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
            r.cores.to_string(),
            format!("0x{:016x}", r.digest),
            r.consistent.to_string(),
            r.parity_ok.map_or("-".to_string(), |ok| ok.to_string()),
        ]);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "shard counts disagree on the final tables"
    );

    println!("\nsharded-simulator scaling: batched concurrent bootstrap (b=16, d=8)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/scale.csv"));
}
