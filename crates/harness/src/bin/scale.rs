//! Large-n scaling of the sharded, arena-backed simulation core: batched
//! concurrent bootstrap throughput (nodes/sec), phase-attributed peak RSS,
//! streaming Definition-3.8 verification, sampled reachability, and
//! sequential-vs-sharded digest parity.
//!
//! Usage: `cargo run --release -p hyperring-harness --bin scale [n[,n…]] [--batch B] [--shards "1,4"] [--smoke] [--parity] [--audit] [--sample-pairs K] [--rss-budget-mib M]`
//!
//! * `n` — total nodes to bootstrap, optionally a comma-separated sweep
//!   (default 4096; `--smoke` forces 512);
//! * `--batch B` — joiners per concurrent wave (default 256);
//! * `--shards LIST` — comma-separated shard counts, one row each
//!   (default `1,4`);
//! * `--parity` — after each sharded row, re-run on one shard and check
//!   the table digests match (the determinism audit; doubles runtime);
//! * `--audit` — additionally run the old materialized pipeline (table
//!   clone + `SuffixIndex` checker) and require digest + violation parity
//!   with the streaming pass (costs the memory the streaming path saves);
//! * `--sample-pairs K` — seeded random routing pairs for the sampled
//!   Lemma-3.1 reachability check (default 256; 0 disables);
//! * `--rss-budget-mib M` — fail if any row's bootstrap-phase peak RSS
//!   exceeds `M` MiB (the CI regression guard);
//! * `--check-rss-budget-mib M` — fail if any row's *check-phase* peak-RSS
//!   delta exceeds `M` MiB; the streaming checker's delta is near zero, so
//!   a tight pin here catches any return of the materializing pipeline;
//! * `--smoke` — small fast configuration for CI.
//!
//! Shard speedups are bounded by the core count, which is printed with
//! every row: on a single-core host the sharded scheduler degrades to
//! ordered sequential delivery and the honest ratio is ≈1×.

use std::path::Path;

use hyperring_harness::experiments::{run_scale, ScaleConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let smoke = opts.has_flag("--smoke");
    let sizes_arg: String = if smoke {
        "512".to_string()
    } else {
        opts.positional(0, "4096".to_string())
    };
    let sizes: Vec<usize> = sizes_arg
        .split(',')
        .map(|s| s.trim().parse().expect("n takes integers"))
        .collect();
    let batch: usize = opts.named("--batch", if smoke { 64 } else { 256 });
    let shards_arg: String = opts.named("--shards", "1,4".to_string());
    let parity = opts.has_flag("--parity");
    let audit = opts.has_flag("--audit");
    let sample_pairs: usize = opts.named("--sample-pairs", 256);
    let rss_budget_mib: u64 = opts.named("--rss-budget-mib", 0);
    let check_rss_budget_mib: u64 = opts.named("--check-rss-budget-mib", 0);
    let shard_counts: Vec<usize> = shards_arg
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes integers"))
        .collect();

    let mut t = Table::new([
        "shards",
        "nodes",
        "batch",
        "wall (s)",
        "nodes/sec",
        "peak RSS (MiB)",
        "check (s)",
        "check RSS (MiB)",
        "unreach",
        "cores",
        "digest",
        "consistent",
        "parity",
        "audit",
    ]);
    for &n in &sizes {
        let mut digests = Vec::new();
        for &shards in &shard_counts {
            eprintln!("bootstrapping {n} nodes on {shards} shard(s), waves of {batch} …");
            let mut cfg = ScaleConfig::new(n, batch, shards);
            cfg.parity = parity;
            cfg.materialized_audit = audit;
            cfg.sample_pairs = sample_pairs;
            let r = run_scale(&cfg);
            assert!(r.consistent, "{shards}-shard bootstrap inconsistent");
            assert_eq!(
                r.unreachable_sampled, 0,
                "{shards}-shard bootstrap failed sampled reachability"
            );
            if let Some(ok) = r.parity_ok {
                assert!(ok, "{shards}-shard digest diverged from 1-shard");
            }
            if let Some(ok) = r.audit_ok {
                assert!(ok, "streaming pass diverged from materialized pipeline");
            }
            if rss_budget_mib > 0 {
                let peak_mib = r.peak_rss_bytes / (1024 * 1024);
                assert!(
                    peak_mib <= rss_budget_mib,
                    "peak RSS {peak_mib} MiB exceeds budget {rss_budget_mib} MiB at n={n}"
                );
            }
            if check_rss_budget_mib > 0 {
                let delta_mib = r.check_rss_delta_bytes / (1024 * 1024);
                assert!(
                    delta_mib <= check_rss_budget_mib,
                    "check-phase RSS delta {delta_mib} MiB exceeds budget \
                     {check_rss_budget_mib} MiB at n={n}"
                );
            }
            digests.push(r.digest);
            t.row([
                shards.to_string(),
                r.nodes.to_string(),
                batch.to_string(),
                format!("{:.2}", r.wall_secs),
                format!("{:.0}", r.nodes_per_sec),
                format!("{:.1}", r.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", r.check_wall_secs),
                format!("{:.2}", r.check_rss_delta_bytes as f64 / (1024.0 * 1024.0)),
                if r.sampled_pairs == 0 {
                    "-".to_string()
                } else {
                    format!("{}/{}", r.unreachable_sampled, r.sampled_pairs)
                },
                r.cores.to_string(),
                format!("0x{:016x}", r.digest),
                r.consistent.to_string(),
                r.parity_ok.map_or("-".to_string(), |ok| ok.to_string()),
                r.audit_ok.map_or("-".to_string(), |ok| ok.to_string()),
            ]);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "shard counts disagree on the final tables at n={n}"
        );
    }

    println!("\nsharded-simulator scaling: batched concurrent bootstrap (b=16, d=8)");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/scale.csv"));
}
