//! Routing stretch (the P2 property of §1) before and after
//! nearest-neighbor table optimization (extension; the paper's problem 3).
//!
//! Usage: `cargo run --release -p hyperring-harness --bin stretch [n] [--trials N] [--sequential]`
//!
//! With `--trials N`, the measurement is repeated under `N` independent
//! seeds (fanned across cores; each trial draws its own topology and id
//! population) and one table is printed per trial. Trial 0 keeps the base
//! seed, so `--trials 1` reproduces the plain run exactly.

use std::path::Path;

use hyperring_harness::experiments::run_stretch;
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let n: usize = opts.positional(0, 512);
    eprintln!("measuring stretch over {n} nodes on a transit-stub topology …");
    let runs = opts.run(2003, |_k, seed| {
        run_stretch(16, 8, n, 2_000, &[1, 2, 4], seed)
    });

    for (k, r) in runs.iter().enumerate() {
        let mut t = Table::new(["tables", "mean stretch", "median", "p95", "mean hops"]);
        t.row([
            "oracle (unoptimized)".to_string(),
            format!("{:.3}", r.before.mean),
            format!("{:.3}", r.before.median),
            format!("{:.3}", r.before.p95),
            format!("{:.2}", r.before.mean_hops),
        ]);
        for (rounds, s) in &r.after {
            t.row([
                format!("optimized, {rounds} round(s)"),
                format!("{:.3}", s.mean),
                format!("{:.3}", s.median),
                format!("{:.3}", s.p95),
                format!("{:.2}", s.mean_hops),
            ]);
        }
        if opts.trials > 1 {
            println!("\nRouting stretch, {n} nodes, 2000 sampled routes (b=16, d=8), trial {k}");
        } else {
            println!("\nRouting stretch, {n} nodes, 2000 sampled routes (b=16, d=8)");
        }
        println!(
            "(entry replacements at deepest optimization: {})",
            r.replacements
        );
        println!("{}", t.render());
        if k == 0 {
            report::write_csv_or_warn(&t, Path::new("results/stretch.csv"));
        }
    }
}
