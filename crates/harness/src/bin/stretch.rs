//! Routing stretch (the P2 property of §1) before and after
//! nearest-neighbor table optimization (extension; the paper's problem 3).
//!
//! Usage: `cargo run --release -p hyperring-harness --bin stretch [n]`

use std::path::Path;

use hyperring_harness::experiments::run_stretch;
use hyperring_harness::{report, Table};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(512);
    eprintln!("measuring stretch over {n} nodes on a transit-stub topology …");
    let r = run_stretch(16, 8, n, 2_000, &[1, 2, 4], 2003);

    let mut t = Table::new([
        "tables",
        "mean stretch",
        "median",
        "p95",
        "mean hops",
    ]);
    t.row([
        "oracle (unoptimized)".to_string(),
        format!("{:.3}", r.before.mean),
        format!("{:.3}", r.before.median),
        format!("{:.3}", r.before.p95),
        format!("{:.2}", r.before.mean_hops),
    ]);
    for (rounds, s) in &r.after {
        t.row([
            format!("optimized, {rounds} round(s)"),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.median),
            format!("{:.3}", s.p95),
            format!("{:.2}", s.mean_hops),
        ]);
    }
    println!("\nRouting stretch, {n} nodes, 2000 sampled routes (b=16, d=8)");
    println!("(entry replacements at deepest optimization: {})", r.replacements);
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/stretch.csv"));
}
