//! §6.2 ablation: bytes saved by the paper's message-size reductions
//! (level-restricted `JoinNotiMsg` payloads, bit-vector-filtered replies).
//!
//! Usage: `cargo run --release -p hyperring-harness --bin ablation_msgsize [--full] [--trials N] [--sequential]`
//!
//! With `--trials N`, each configuration is re-run under `N` independent
//! seeds (fanned across cores), one row per trial; trial 0 keeps the base
//! seed, so `--trials 1` reproduces the plain run exactly.

use std::path::Path;

use hyperring_harness::experiments::{run_msgsize_ablation, DelayKind, Fig15bConfig};
use hyperring_harness::{report, Table, TrialOpts};

fn main() {
    let opts = TrialOpts::from_env();
    let full = opts.has_flag("--full");
    let configs: Vec<Fig15bConfig> = if full {
        vec![
            Fig15bConfig {
                n: 3096,
                m: 1000,
                d: 8,
                b: 16,
                delay: DelayKind::PaperTopology,
                seed: 2003,
                payload: hyperring_core::PayloadMode::Full,
            },
            Fig15bConfig {
                n: 3096,
                m: 1000,
                d: 40,
                b: 16,
                delay: DelayKind::PaperTopology,
                seed: 2003,
                payload: hyperring_core::PayloadMode::Full,
            },
        ]
    } else {
        vec![Fig15bConfig::small(8, 3), Fig15bConfig::small(40, 3)]
    };

    let mut t = Table::new([
        "config",
        "full (joiner bytes)",
        "levels",
        "bitvector",
        "levels saving",
        "bitvector saving",
        "all consistent",
    ]);
    for cfg in &configs {
        let label = format!("n={},m={},b={},d={}", cfg.n, cfg.m, cfg.b, cfg.d);
        eprintln!("running {label} under 3 payload modes …");
        let runs = opts.run(cfg.seed, |_k, seed| {
            run_msgsize_ablation(&Fig15bConfig { seed, ..*cfg })
        });
        for (k, r) in runs.iter().enumerate() {
            assert!(
                r.all_consistent,
                "{label}: a payload mode broke consistency"
            );
            let row_label = if opts.trials > 1 {
                format!("{label} t={k}")
            } else {
                label.clone()
            };
            t.row([
                row_label,
                r.full_bytes.to_string(),
                r.levels_bytes.to_string(),
                r.bitvector_bytes.to_string(),
                format!("{:.1}%", 100.0 * r.levels_saving()),
                format!("{:.1}%", 100.0 * r.bitvector_saving()),
                r.all_consistent.to_string(),
            ]);
        }
    }
    println!("\n§6.2 message-size reduction ablation");
    println!("{}", t.render());
    report::write_csv_or_warn(&t, Path::new("results/ablation_msgsize.csv"));
}
