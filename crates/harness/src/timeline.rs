//! The event-timeline scenario DSL: one seeded, deterministic schedule of
//! joins, crashes, leaves, lookup storms, and consistency checkpoints,
//! compiled ahead of the run and driven through the sharded simulator.
//!
//! A [`Timeline`] is a builder over virtual time:
//!
//! ```
//! use hyperring_harness::{Timeline, TimelineScenario};
//! use hyperring_core::{FailureDetector, ProtocolOptions};
//! use hyperring_id::IdSpace;
//!
//! let tl = Timeline::new()
//!     .at(0).join(2)
//!     .at(400_000).crash(0.25)
//!     .at(2_000_000).checkpoint("post-crash")
//!     .at(4_000_000).lookup_storm(64)
//!     .horizon(6_000_000);
//! let fd = FailureDetector { probe_interval_us: 100_000, ..FailureDetector::default() };
//! let r = TimelineScenario::new(IdSpace::new(4, 5)?)
//!     .members(12)
//!     .seed(7)
//!     .options(ProtocolOptions::new().with_failure_detector(fd))
//!     .delay_bounds(500, 5_000)
//!     .run(tl);
//! assert!(r.consistent, "{} violations", r.violations);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! **Determinism.** Compilation resolves every identifier ahead of the
//! run: joiners and gateways come from [`JoinWorkload::generate`], crash
//! and leave victims from one seed-derived shuffle of the members
//! (`pick_victims` semantics — the first `k` victims of any timeline
//! equal the `k` victims a one-shot crash scenario draws, which is what
//! keeps the refolded `crashchurn` experiment bit-identical). All
//! schedule injections happen before the simulator starts, so the event
//! stream — and any attached trace digest — depends only on
//! `(timeline, members, seed)`. Checkpoints and storms pause the
//! simulator with `SimNetwork::run_until`, which composes exactly
//! (`run_until(a); run_until(b)` ≡ `run_until(b)`), so *observing* a run
//! more often never changes it.
//!
//! **Measurement.** A [`ChurnLog`] trace sink pairs every `EntryEvicted`
//! with the `RepairInstalled` that refills the slot, yielding per-slot
//! time-to-repair samples (both from eviction and from the underlying
//! crash instant); [`IncrementalChecker`] checkpoints yield
//! consistency-recovery spans. Lookup storms greedily suffix-route seeded
//! `(source, target)` pairs over the *current* S-node tables without
//! injecting any simulator event, so they measure reachability without
//! perturbing the protocol run.

use std::collections::{BTreeMap, BTreeSet};

use hyperring_core::{
    ConsistencyReport, DigestTrace, IncrementalChecker, NeighborTable, ProtocolEvent,
    ProtocolOptions, SharedSink, SimNetworkBuilder, Status, TraceRecord, TraceSink, Violation,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::{Time, UniformDelay};

use crate::lookup::{run_schedule, storm_keys, LookupStats, StormSchedule};
use crate::scenario::pick_victims;
use crate::workload::JoinWorkload;
use hyperring_object::ObjectStore;

/// One scheduled action of a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Start `count` concurrent joins (ids and gateways drawn from the
    /// run's [`JoinWorkload`]).
    Join {
        /// Number of joiners started.
        count: usize,
    },
    /// Crash `⌈initial_members · fraction⌉` members silently (no goodbye;
    /// the failure detector must notice).
    CrashFrac {
        /// Fraction of the *initial* member count.
        fraction: f64,
    },
    /// Crash exactly `count` members silently.
    CrashCount {
        /// Number of victims.
        count: usize,
    },
    /// Make `count` members leave gracefully (the goodbye protocol).
    LeaveCount {
        /// Number of leavers.
        count: usize,
    },
    /// Route `lookups` seeded `(source, target)` pairs over the current
    /// S-node tables and record delivery/hop statistics.
    LookupStorm {
        /// Number of lookups routed.
        lookups: usize,
    },
    /// Route `lookups` keyed (object-identifier) lookups through a
    /// borrowed [`ObjectStore`] over the current S-node tables: sources
    /// uniform over the live nodes, keys Zipf(`exponent`)-popular.
    KeyedStorm {
        /// Number of lookups routed.
        lookups: usize,
        /// Distinct object keys.
        keys: usize,
        /// Zipf exponent of key popularity (0 = uniform).
        exponent: f64,
    },
    /// Pause and run the incremental Definition-3.8 checker over the
    /// current S-node tables.
    Checkpoint {
        /// Label reported back in the matching [`CheckpointReport`].
        label: String,
    },
}

/// An `(at, action)` pair of a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Virtual time (µs) the action fires at.
    pub at: Time,
    /// What happens.
    pub action: Action,
}

/// A seeded schedule of churn events over virtual time. Build with
/// [`at`](Timeline::at) / [`At`]'s chained methods, finish with
/// [`horizon`](Timeline::horizon), run with [`TimelineScenario::run`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
    horizon: Time,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Positions the cursor at virtual time `t`; the returned [`At`]
    /// schedules actions there.
    pub fn at(self, t: Time) -> At {
        At { tl: self, t }
    }

    /// Sets the virtual time the run ends at. Defaults to the last
    /// event's time when unset.
    pub fn horizon(mut self, t: Time) -> Self {
        self.horizon = t;
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Resolves the schedule against a concrete population: generates the
    /// member/joiner workload, assigns victims to crash/leave events from
    /// one seed-derived shuffle, and remaps any join gateway that the
    /// schedule has already killed by then. Pure — same inputs, same
    /// [`CompiledTimeline`].
    ///
    /// # Panics
    ///
    /// Panics on a degenerate schedule: no members, more victims than
    /// members − 1, or a horizon before the last event.
    pub fn compile(&self, space: IdSpace, members: usize, seed: u64) -> CompiledTimeline {
        assert!(members > 0, "a timeline needs at least one member");
        let mut events: Vec<&TimelineEvent> = self.events.iter().collect();
        events.sort_by_key(|e| e.at); // stable: same-time events keep order
        let horizon = if self.horizon > 0 {
            self.horizon
        } else {
            events.last().map_or(0, |e| e.at)
        };
        if let Some(last) = events.last() {
            assert!(
                horizon >= last.at,
                "horizon {horizon} precedes the last event at {}",
                last.at
            );
        }
        let total_joins: usize = events
            .iter()
            .map(|e| match e.action {
                Action::Join { count } => count,
                _ => 0,
            })
            .sum();
        let w = JoinWorkload::generate(space, members, total_joins, seed);
        // One full seed-derived shuffle of the members; slicing its prefix
        // reproduces `pick_victims(members, k, seed)` exactly, so the
        // first crash event of a timeline kills the same nodes a one-shot
        // crash scenario would.
        let pool = pick_victims(&w.members, w.members.len(), seed);
        let mut cursor = 0usize;
        let mut joiner_cursor = 0usize;
        let mut dead: BTreeSet<NodeId> = BTreeSet::new();
        let mut out = CompiledTimeline {
            members: w.members.clone(),
            joins: Vec::new(),
            crashes: Vec::new(),
            leaves: Vec::new(),
            storms: Vec::new(),
            keyed_storms: Vec::new(),
            checkpoints: Vec::new(),
            horizon,
        };
        let take_victims = |k: usize, cursor: &mut usize, dead: &mut BTreeSet<NodeId>| {
            assert!(
                *cursor + k < members,
                "timeline kills {} of {members} members; at least one must survive",
                *cursor + k
            );
            let picked: Vec<NodeId> = pool[*cursor..*cursor + k].to_vec();
            *cursor += k;
            dead.extend(picked.iter().copied());
            picked
        };
        for ev in events {
            match &ev.action {
                Action::Join { count } => {
                    for _ in 0..*count {
                        let (id, gw) = w.joiners[joiner_cursor];
                        joiner_cursor += 1;
                        // A gateway the schedule already killed can never
                        // answer; remap deterministically to the first
                        // still-alive member. Joins scheduled before any
                        // crash keep their generated gateway untouched.
                        let gw = if dead.contains(&gw) {
                            w.members
                                .iter()
                                .copied()
                                .find(|m| !dead.contains(m))
                                .expect("at least one member survives")
                        } else {
                            gw
                        };
                        out.joins.push((id, gw, ev.at));
                    }
                }
                Action::CrashFrac { fraction } => {
                    let k = ((members as f64) * fraction).ceil() as usize;
                    for v in take_victims(k, &mut cursor, &mut dead) {
                        out.crashes.push((v, ev.at));
                    }
                }
                Action::CrashCount { count } => {
                    for v in take_victims(*count, &mut cursor, &mut dead) {
                        out.crashes.push((v, ev.at));
                    }
                }
                Action::LeaveCount { count } => {
                    for v in take_victims(*count, &mut cursor, &mut dead) {
                        out.leaves.push((v, ev.at));
                    }
                }
                Action::LookupStorm { lookups } => out.storms.push((ev.at, *lookups)),
                Action::KeyedStorm {
                    lookups,
                    keys,
                    exponent,
                } => out.keyed_storms.push((ev.at, *lookups, *keys, *exponent)),
                Action::Checkpoint { label } => out.checkpoints.push((ev.at, label.clone())),
            }
        }
        out
    }
}

/// Cursor of a [`Timeline`] positioned at one virtual time; every method
/// schedules an action there and returns the cursor for chaining.
#[derive(Debug)]
pub struct At {
    tl: Timeline,
    t: Time,
}

impl At {
    fn push(mut self, action: Action) -> Self {
        self.tl.events.push(TimelineEvent { at: self.t, action });
        self
    }

    /// Starts `count` concurrent joins here.
    pub fn join(self, count: usize) -> Self {
        self.push(Action::Join { count })
    }

    /// Crashes `⌈initial_members · fraction⌉` members here (silently).
    pub fn crash(self, fraction: f64) -> Self {
        self.push(Action::CrashFrac { fraction })
    }

    /// Crashes exactly `count` members here (silently).
    pub fn crash_count(self, count: usize) -> Self {
        self.push(Action::CrashCount { count })
    }

    /// Makes `count` members leave gracefully here.
    pub fn leave(self, count: usize) -> Self {
        self.push(Action::LeaveCount { count })
    }

    /// Routes `lookups` seeded lookups over the current tables here.
    pub fn lookup_storm(self, lookups: usize) -> Self {
        self.push(Action::LookupStorm { lookups })
    }

    /// Routes `lookups` keyed lookups (Zipf(`exponent`) over `keys`
    /// object identifiers) through a borrowed object store here.
    pub fn keyed_storm(self, lookups: usize, keys: usize, exponent: f64) -> Self {
        self.push(Action::KeyedStorm {
            lookups,
            keys,
            exponent,
        })
    }

    /// Runs the incremental consistency checker here.
    pub fn checkpoint(self, label: &str) -> Self {
        self.push(Action::Checkpoint {
            label: label.to_string(),
        })
    }

    /// Moves the cursor to virtual time `t`.
    pub fn at(self, t: Time) -> At {
        self.tl.at(t)
    }

    /// Sets the horizon and finishes the timeline.
    pub fn horizon(self, t: Time) -> Timeline {
        self.tl.horizon(t)
    }

    /// Finishes the timeline (horizon defaults to the last event).
    pub fn done(self) -> Timeline {
        self.tl
    }
}

impl From<At> for Timeline {
    fn from(at: At) -> Timeline {
        at.tl
    }
}

/// A [`Timeline`] resolved against a concrete population: every
/// identifier is known before the simulator starts.
#[derive(Debug, Clone)]
pub struct CompiledTimeline {
    /// The initial consistent network `V`.
    pub members: Vec<NodeId>,
    /// `(joiner, gateway, at)` — fed to the builder's `add_joiner`.
    pub joins: Vec<(NodeId, NodeId, Time)>,
    /// `(victim, at)` silent crashes, in schedule order.
    pub crashes: Vec<(NodeId, Time)>,
    /// `(leaver, at)` graceful departures, in schedule order.
    pub leaves: Vec<(NodeId, Time)>,
    /// `(at, lookups)` storms, in schedule order.
    pub storms: Vec<(Time, usize)>,
    /// `(at, lookups, keys, exponent)` keyed storms, in schedule order.
    pub keyed_storms: Vec<(Time, usize, usize, f64)>,
    /// `(at, label)` checkpoints, in schedule order.
    pub checkpoints: Vec<(Time, String)>,
    /// Virtual end of the run.
    pub horizon: Time,
}

/// Time-to-repair bookkeeping built from the protocol trace: pairs every
/// `EntryEvicted` with the `RepairInstalled` that refills the slot.
#[derive(Debug, Default)]
pub struct ChurnLog {
    /// When each crash victim died (virtual µs), for crash-to-repair
    /// attribution.
    crash_times: BTreeMap<NodeId, Time>,
    /// `(owner, level, digit)` slots evicted and not yet repaired →
    /// `(evicted_at, victim)`.
    open: BTreeMap<(NodeId, usize, u8), (Time, NodeId)>,
    /// Eviction-to-repair latency per repaired slot (µs).
    pub ttr_from_eviction_us: Vec<u64>,
    /// Crash-to-repair latency per repaired slot (µs; only slots whose
    /// victim has a known crash time).
    pub ttr_from_crash_us: Vec<u64>,
    /// Total evictions observed.
    pub evicted: u64,
    /// Total repairs observed.
    pub repaired: u64,
}

impl ChurnLog {
    /// A log attributing repairs to the given crash schedule.
    pub fn new(crash_times: BTreeMap<NodeId, Time>) -> Self {
        ChurnLog {
            crash_times,
            ..Self::default()
        }
    }
}

impl TraceSink for ChurnLog {
    fn record(&mut self, rec: &TraceRecord) {
        match rec.event {
            ProtocolEvent::EntryEvicted { level, digit, node } => {
                self.evicted += 1;
                self.open.insert((rec.node, level, digit), (rec.at, node));
            }
            ProtocolEvent::RepairInstalled { level, digit, .. } => {
                if let Some((evicted_at, victim)) = self.open.remove(&(rec.node, level, digit)) {
                    self.repaired += 1;
                    self.ttr_from_eviction_us
                        .push(rec.at.saturating_sub(evicted_at));
                    if let Some(&crashed_at) = self.crash_times.get(&victim) {
                        self.ttr_from_crash_us
                            .push(rec.at.saturating_sub(crashed_at));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Fans one trace stream out to two sinks (e.g. a [`ChurnLog`] and a
/// [`DigestTrace`]) without perturbing either.
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&mut self, rec: &TraceRecord) {
        self.0.record(rec);
        self.1.record(rec);
    }

    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

/// One checkpoint's consistency verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The checkpoint's label.
    pub label: String,
    /// Virtual time it ran at.
    pub at: Time,
    /// S-node tables it covered.
    pub live: usize,
    /// Definition-3.8 violations among them.
    pub violations: usize,
    /// The reachability-breaking subset.
    pub false_negatives: usize,
    /// Whether the covered tables were fully consistent.
    pub consistent: bool,
}

/// One lookup storm's routing outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormReport {
    /// Virtual time the storm ran at.
    pub at: Time,
    /// Lookups attempted.
    pub lookups: usize,
    /// Lookups that reached their target.
    pub delivered: usize,
    /// Total hops over delivered lookups.
    pub hops_total: usize,
    /// Longest delivered path.
    pub hops_max: usize,
}

/// One keyed storm's routing outcome: full [`LookupStats`] from a
/// borrowed object store stood on the network's live tables at that
/// instant.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedStormReport {
    /// Virtual time the storm ran at.
    pub at: Time,
    /// Routing statistics (no latency oracle under the abstract delay
    /// model, so `stats.stretch` is `None`).
    pub stats: LookupStats,
}

/// Outcome of one timeline run.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// Joins started by the schedule.
    pub joins: usize,
    /// Members crashed by the schedule.
    pub crashed: usize,
    /// Members that left gracefully.
    pub left: usize,
    /// Live (neither departed nor crashed) nodes at the end.
    pub survivors: usize,
    /// Final survivor-restricted Definition-3.8 report.
    pub final_report: ConsistencyReport,
    /// Definition-3.8 violations at the end.
    pub violations: usize,
    /// The reachability-breaking subset at the end.
    pub false_negatives: usize,
    /// Whether the run ended consistent.
    pub consistent: bool,
    /// Survivor table entries still naming a crashed node.
    pub dead_refs: usize,
    /// Checkpoint verdicts, in schedule order.
    pub checkpoints: Vec<CheckpointReport>,
    /// Storm outcomes, in schedule order.
    pub storms: Vec<StormReport>,
    /// Keyed-storm outcomes, in schedule order.
    pub keyed_storms: Vec<KeyedStormReport>,
    /// Eviction-to-repair latency samples (µs).
    pub ttr_from_eviction_us: Vec<u64>,
    /// Crash-to-repair latency samples (µs).
    pub ttr_from_crash_us: Vec<u64>,
    /// Consistency-recovery spans (µs): disruption to the first
    /// subsequent consistent checkpoint.
    pub recovery_us: Vec<u64>,
    /// Slots evicted over the run.
    pub evicted: u64,
    /// Slots repaired over the run.
    pub repaired: u64,
    /// Messages delivered over the run.
    pub delivered: u64,
    /// Timers fired over the run.
    pub timers_fired: u64,
    /// Virtual time the run ended at.
    pub finished_at: u64,
    /// Protocol events recorded.
    pub traced: u64,
    /// FNV-1a digest of the full protocol trace (byte-identical across
    /// reruns of the same `(timeline, members, seed)`).
    pub trace_digest: u64,
}

/// Runner configuration for a [`Timeline`]: population, seed, options,
/// simulator delay bounds.
#[derive(Debug)]
pub struct TimelineScenario {
    space: IdSpace,
    members: usize,
    seed: u64,
    opts: ProtocolOptions,
    delay_bounds: (Time, Time),
}

impl TimelineScenario {
    /// A scenario over `space` with 16 members, seed 0, default options,
    /// and the crash-churn experiment's `[1 ms, 50 ms]` delay bounds.
    pub fn new(space: IdSpace) -> Self {
        TimelineScenario {
            space,
            members: 16,
            seed: 0,
            opts: ProtocolOptions::new(),
            delay_bounds: (1_000, 50_000),
        }
    }

    /// Sets the initial member count.
    pub fn members(mut self, n: usize) -> Self {
        self.members = n;
        self
    }

    /// Sets the seed (workload, victims, delays, storms).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the protocol options handed to every engine.
    pub fn options(mut self, opts: ProtocolOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the uniform message-delay bounds (µs).
    pub fn delay_bounds(mut self, min: Time, max: Time) -> Self {
        self.delay_bounds = (min, max);
        self
    }

    /// Compiles and runs `timeline` on the deterministic simulator.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate schedule (see [`Timeline::compile`]).
    pub fn run(self, timeline: Timeline) -> TimelineReport {
        let c = timeline.compile(self.space, self.members, self.seed);
        self.run_compiled(&c)
    }

    /// Runs an already-compiled timeline (exposed so callers can inspect
    /// or pin the resolved schedule).
    pub fn run_compiled(&self, c: &CompiledTimeline) -> TimelineReport {
        let space = self.space;
        let mut b = SimNetworkBuilder::new(space);
        for id in &c.members {
            b.add_member(*id);
        }
        for (id, gw, at) in &c.joins {
            b.add_joiner(*id, *gw, *at);
        }
        b.options(self.opts);
        let crash_times: BTreeMap<NodeId, Time> = c.crashes.iter().copied().collect();
        let churn = SharedSink::new(ChurnLog::new(crash_times));
        let digest = SharedSink::new(DigestTrace::new());
        b.trace(Box::new(TeeSink(churn.clone(), digest.clone())));
        let (lo, hi) = self.delay_bounds;
        let mut net = b.build(UniformDelay::new(lo, hi), self.seed);
        for (id, at) in &c.crashes {
            net.crash_at(id, *at);
        }
        for (id, at) in &c.leaves {
            net.leave_at(id, *at);
        }

        // Merge checkpoints and storms into one pause schedule. Both are
        // pure observations, so pausing never perturbs the run.
        enum Pause<'a> {
            Check(&'a str),
            Storm(usize),
            Keyed {
                lookups: usize,
                keys: usize,
                exponent: f64,
            },
        }
        let mut pauses: Vec<(Time, usize, Pause)> = Vec::new();
        for (i, (at, label)) in c.checkpoints.iter().enumerate() {
            pauses.push((*at, i, Pause::Check(label)));
        }
        for (i, (at, lookups)) in c.storms.iter().enumerate() {
            pauses.push((*at, i, Pause::Storm(*lookups)));
        }
        for (i, (at, lookups, keys, exponent)) in c.keyed_storms.iter().enumerate() {
            pauses.push((
                *at,
                i,
                Pause::Keyed {
                    lookups: *lookups,
                    keys: *keys,
                    exponent: *exponent,
                },
            ));
        }
        pauses.sort_by_key(|(at, i, _)| (*at, *i));

        // Consistency-recovery bookkeeping: the first disruption after
        // the tables were last known consistent opens a spell; the first
        // consistent checkpoint after it closes the spell.
        let mut disruptions: Vec<Time> = c
            .crashes
            .iter()
            .map(|(_, at)| *at)
            .chain(c.leaves.iter().map(|(_, at)| *at))
            .collect();
        disruptions.sort_unstable();
        let mut disruption_idx = 0usize;
        let mut open_spell: Option<Time> = None;
        let mut last_consistent_at: Time = 0;
        let mut recovery_us: Vec<u64> = Vec::new();

        let mut checker = IncrementalChecker::new(space);
        let mut checkpoints = Vec::new();
        let mut storms = Vec::new();
        let mut keyed_storms = Vec::new();
        for (at, _, pause) in &pauses {
            net.run_until(*at);
            match pause {
                Pause::Check(label) => {
                    let tables: Vec<&NeighborTable> = net
                        .engines()
                        .filter(|e| e.status() == Status::InSystem)
                        .map(|e| e.table())
                        .collect();
                    let report = checker.check(tables.iter().copied());
                    let false_negatives = report
                        .violations()
                        .iter()
                        .filter(|v| matches!(v, Violation::FalseNegative { .. }))
                        .count();
                    let consistent = report.is_consistent();
                    // Advance the disruption cursor to this checkpoint.
                    while disruption_idx < disruptions.len() && disruptions[disruption_idx] <= *at {
                        if open_spell.is_none() && disruptions[disruption_idx] >= last_consistent_at
                        {
                            open_spell = Some(disruptions[disruption_idx]);
                        }
                        disruption_idx += 1;
                    }
                    if consistent {
                        if let Some(t0) = open_spell.take() {
                            recovery_us.push(at.saturating_sub(t0));
                        }
                        last_consistent_at = *at;
                    }
                    checkpoints.push(CheckpointReport {
                        label: (*label).to_string(),
                        at: *at,
                        live: tables.len(),
                        violations: report.violations().len(),
                        false_negatives,
                        consistent,
                    });
                }
                Pause::Storm(lookups) => {
                    storms.push(run_storm(&net, *at, *lookups, self.seed, storms.len()));
                }
                Pause::Keyed {
                    lookups,
                    keys,
                    exponent,
                } => {
                    keyed_storms.push(run_keyed_storm(
                        &net,
                        *at,
                        *lookups,
                        *keys,
                        *exponent,
                        self.seed,
                        keyed_storms.len(),
                    ));
                }
            }
        }
        let report = net.run_until(c.horizon);

        let crashed_set: BTreeSet<NodeId> = c.crashes.iter().map(|(id, _)| *id).collect();
        let dead_refs = net
            .tables_iter()
            .flat_map(|t| t.iter())
            .filter(|(_, _, e)| crashed_set.contains(&e.node))
            .count();
        let survivors = net.tables_iter().count();
        let final_report = net.check_consistency();
        let false_negatives = final_report
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::FalseNegative { .. }))
            .count();
        let trace_digest = digest.lock().digest();
        let log = churn.lock();
        TimelineReport {
            joins: c.joins.len(),
            crashed: c.crashes.len(),
            left: c.leaves.len(),
            survivors,
            violations: final_report.violations().len(),
            false_negatives,
            consistent: final_report.is_consistent(),
            final_report,
            dead_refs,
            checkpoints,
            storms,
            keyed_storms,
            ttr_from_eviction_us: log.ttr_from_eviction_us.clone(),
            ttr_from_crash_us: log.ttr_from_crash_us.clone(),
            recovery_us,
            evicted: log.evicted,
            repaired: log.repaired,
            delivered: report.delivered,
            timers_fired: report.timers_fired,
            finished_at: report.finished_at,
            traced: report.traced,
            trace_digest,
        }
    }
}

/// Routes `lookups` seeded `(source, target)` pairs over the current
/// S-node tables by greedy suffix routing. A hop into a node with no
/// S-node table (crashed, departed, or still joining) or a hole drops the
/// lookup; paths are capped at `d + 1` hops.
fn run_storm<D: hyperring_sim::DelayModel>(
    net: &hyperring_core::SimNetwork<D>,
    at: Time,
    lookups: usize,
    seed: u64,
    storm_idx: usize,
) -> StormReport {
    use rand::{Rng, SeedableRng};
    let tables: BTreeMap<NodeId, &NeighborTable> = net
        .engines()
        .filter(|e| e.status() == Status::InSystem)
        .map(|e| (e.id(), e.table()))
        .collect();
    let ids: Vec<NodeId> = tables.keys().copied().collect();
    let d = net.space().digit_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed ^ 0xa076_1d64_78bd_642f_u64.wrapping_mul(storm_idx as u64 + 1),
    );
    let mut delivered = 0usize;
    let mut hops_total = 0usize;
    let mut hops_max = 0usize;
    if ids.len() >= 2 {
        for _ in 0..lookups {
            let s = ids[rng.gen_range(0..ids.len())];
            let mut t = ids[rng.gen_range(0..ids.len())];
            while t == s {
                t = ids[rng.gen_range(0..ids.len())];
            }
            let mut here = s;
            let mut hops = 0usize;
            loop {
                if here == t {
                    delivered += 1;
                    hops_total += hops;
                    hops_max = hops_max.max(hops);
                    break;
                }
                if hops > d {
                    break; // inconsistent tables produced a detour; drop
                }
                let Some(table) = tables.get(&here) else {
                    break; // routed into a dead or still-joining node
                };
                let k = here.csuf_len(&t);
                match table.get(k, t.digit(k)) {
                    Some(e) => {
                        here = e.node;
                        hops += 1;
                    }
                    None => break, // hole: lost lookup
                }
            }
        }
    }
    StormReport {
        at,
        lookups,
        delivered,
        hops_total,
        hops_max,
    }
}

/// Routes a compiled keyed storm through a borrowed [`ObjectStore`] over
/// the current S-node tables. Like [`run_storm`], this is a pure
/// observation: the store borrows the engines' tables in place and the
/// simulator never sees an event.
fn run_keyed_storm<D: hyperring_sim::DelayModel>(
    net: &hyperring_core::SimNetwork<D>,
    at: Time,
    lookups: usize,
    keys: usize,
    exponent: f64,
    seed: u64,
    storm_idx: usize,
) -> KeyedStormReport {
    let space = net.space();
    let tables: Vec<&NeighborTable> = net
        .engines()
        .filter(|e| e.status() == Status::InSystem)
        .map(|e| e.table())
        .collect();
    let sources: Vec<NodeId> = tables.iter().map(|t| t.owner()).collect();
    let schedule = StormSchedule::compile(
        sources,
        storm_keys(space, "timeline-key", keys),
        lookups,
        exponent,
        seed ^ 0x517c_c1b7_2722_0a95_u64.wrapping_mul(storm_idx as u64 + 1),
    );
    let store = ObjectStore::over(space, tables.iter().copied());
    let stats = run_schedule(&store, &schedule, None, None);
    KeyedStormReport { at, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::FailureDetector;

    fn space() -> IdSpace {
        IdSpace::new(4, 5).unwrap()
    }

    fn fd() -> FailureDetector {
        FailureDetector {
            probe_interval_us: 100_000,
            suspicion_threshold: 3,
            repair: true,
            ..FailureDetector::default()
        }
    }

    #[test]
    fn builder_orders_and_compiles() {
        let tl = Timeline::new()
            .at(1_000)
            .join(2)
            .crash(0.25)
            .at(500)
            .checkpoint("early")
            .horizon(10_000);
        let c = tl.compile(space(), 8, 3);
        assert_eq!(c.joins.len(), 2);
        assert_eq!(c.crashes.len(), 2); // ceil(8 * 0.25)
        assert_eq!(c.checkpoints, vec![(500, "early".to_string())]);
        assert_eq!(c.horizon, 10_000);
        // Stable sort: the checkpoint at t=500 precedes the t=1000 events,
        // and compile is pure.
        let c2 = tl.compile(space(), 8, 3);
        assert_eq!(c.crashes, c2.crashes);
        assert_eq!(c.joins, c2.joins);
    }

    #[test]
    fn first_crash_event_matches_one_shot_victims() {
        let tl = Timeline::new().at(100).crash_count(3).horizon(200);
        let c = tl.compile(space(), 10, 7);
        let w = JoinWorkload::generate(space(), 10, 0, 7);
        let expect = pick_victims(&w.members, 3, 7);
        let got: Vec<NodeId> = c.crashes.iter().map(|(id, _)| *id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn dead_gateways_are_remapped() {
        let tl = Timeline::new()
            .at(100)
            .crash_count(5)
            .at(5_000_000)
            .join(8)
            .horizon(6_000_000);
        let c = tl.compile(space(), 8, 11);
        let dead: BTreeSet<NodeId> = c.crashes.iter().map(|(id, _)| *id).collect();
        assert_eq!(dead.len(), 5);
        for (id, gw, _) in &c.joins {
            assert!(!dead.contains(gw), "join {id} routed via dead gateway {gw}");
            assert_ne!(id, gw);
        }
    }

    #[test]
    fn crash_wave_timeline_repairs_and_checkpoints_see_recovery() {
        let tl = Timeline::new()
            .at(100_000)
            .crash(0.2)
            .at(150_000)
            .checkpoint("during")
            .at(4_500_000)
            .checkpoint("after")
            .at(4_600_000)
            .lookup_storm(32)
            .horizon(5_000_000);
        let r = TimelineScenario::new(space())
            .members(16)
            .seed(5)
            .options(ProtocolOptions::new().with_failure_detector(fd()))
            .run(tl);
        assert_eq!(r.crashed, 4);
        assert_eq!(r.survivors, 12);
        assert_eq!(r.dead_refs, 0);
        assert!(r.consistent, "{} violations", r.violations);
        let after = &r.checkpoints[1];
        assert!(after.consistent, "late checkpoint inconsistent");
        assert!(r.repaired > 0 && !r.ttr_from_crash_us.is_empty());
        // Every repair strictly follows its crash and its eviction.
        assert!(r.ttr_from_eviction_us.iter().all(|&t| t > 0));
        let storm = &r.storms[0];
        assert_eq!(storm.delivered, storm.lookups, "post-repair lookups lost");
        assert!(storm.hops_max <= 5);
    }

    #[test]
    fn checkpoints_do_not_perturb_the_run() {
        let base = TimelineScenario::new(space())
            .members(16)
            .seed(9)
            .options(ProtocolOptions::new().with_failure_detector(fd()));
        let plain = base.run(Timeline::new().at(100_000).crash(0.2).horizon(5_000_000));
        let observed = TimelineScenario::new(space())
            .members(16)
            .seed(9)
            .options(ProtocolOptions::new().with_failure_detector(fd()))
            .run(
                Timeline::new()
                    .at(100_000)
                    .crash(0.2)
                    .at(1_000_000)
                    .checkpoint("a")
                    .at(2_000_000)
                    .lookup_storm(16)
                    .at(2_500_000)
                    .keyed_storm(64, 8, 0.9)
                    .at(3_000_000)
                    .checkpoint("b")
                    .horizon(5_000_000),
            );
        assert_eq!(plain.trace_digest, observed.trace_digest);
        assert_eq!(plain.delivered, observed.delivered);
        assert_eq!(plain.finished_at, observed.finished_at);
        // The keyed storm really ran — it just couldn't perturb anything.
        assert_eq!(observed.keyed_storms.len(), 1);
        assert_eq!(observed.keyed_storms[0].stats.lookups, 64);
    }

    #[test]
    fn keyed_storms_report_full_lookup_stats() {
        let tl = Timeline::new()
            .at(100_000)
            .crash(0.2)
            .at(4_500_000)
            .keyed_storm(200, 12, 0.8)
            .horizon(5_000_000);
        let r = TimelineScenario::new(space())
            .members(16)
            .seed(5)
            .options(ProtocolOptions::new().with_failure_detector(fd()))
            .run(tl);
        assert!(r.consistent, "{} violations", r.violations);
        let s = &r.keyed_storms[0].stats;
        assert_eq!(s.lookups, 200);
        assert_eq!(s.keys, 12);
        assert_eq!(s.hop_histogram.iter().sum::<u64>(), 200);
        assert!(s.stretch.is_none(), "abstract delay model has no oracle");
        assert!(s.load.imbalance >= 1.0);
        // Post-repair tables are consistent, so every lookup terminates
        // within d hops.
        assert!(s.max_hops <= 5);
    }

    #[test]
    fn graceful_leaves_ride_the_timeline() {
        let tl = Timeline::new()
            .at(200_000)
            .leave(2)
            .at(4_000_000)
            .checkpoint("settled")
            .horizon(5_000_000);
        let r = TimelineScenario::new(space())
            .members(12)
            .seed(4)
            .options(ProtocolOptions::new().with_failure_detector(fd()))
            .run(tl);
        assert_eq!(r.left, 2);
        assert_eq!(r.survivors, 10);
        assert!(r.consistent, "{} violations", r.violations);
    }
}
