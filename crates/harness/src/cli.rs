//! Shared command-line handling for the experiment binaries.
//!
//! Every binary accepts, in addition to its own positional arguments:
//!
//! * `--trials N` — run `N` independent trials (default 1), fanned across
//!   cores, with per-trial seeds from
//!   [`trial_seed`](crate::workload::trial_seed);
//! * `--sequential` — run those trials on one core instead. The printed
//!   output is identical either way (the parallel runner is
//!   order-preserving and trials share no mutable state), so this exists
//!   for cross-checking and for memory-constrained machines;
//! * `--trace PATH` — binaries that support it write a JSONL protocol
//!   trace (one [`ProtocolEvent`](hyperring_core::ProtocolEvent) per line,
//!   stamped with virtual time) of one representative run to `PATH`.
//!   Simulator traces are deterministic under a fixed seed: same inputs,
//!   byte-identical file.

use std::path::PathBuf;

use crate::workload::{run_trials, run_trials_sequential};
use rayon::prelude::*;

/// Trial-related options extracted from the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOpts {
    /// Number of independent trials to run (≥ 1).
    pub trials: usize,
    /// Run trials sequentially instead of across cores.
    pub sequential: bool,
    /// Where to write a JSONL protocol trace, if requested.
    pub trace: Option<PathBuf>,
    /// The arguments left over after removing trial flags, in order
    /// (excluding the program name).
    pub rest: Vec<String>,
}

impl TrialOpts {
    /// Parses `--trials N` and `--sequential` out of an argument list.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if `--trials` is missing its value or
    /// the value is not a positive integer.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut trials = 1usize;
        let mut sequential = false;
        let mut trace = None;
        let mut rest = Vec::new();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    let v = args.next().expect("--trials requires a value");
                    trials = v
                        .parse()
                        .expect("--trials value must be a positive integer");
                    assert!(trials >= 1, "--trials value must be a positive integer");
                }
                "--sequential" => sequential = true,
                "--trace" => {
                    let v = args.next().expect("--trace requires a path");
                    trace = Some(PathBuf::from(v));
                }
                _ => rest.push(a),
            }
        }
        TrialOpts {
            trials,
            sequential,
            trace,
            rest,
        }
    }

    /// Parses the process's own arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The `i`-th leftover positional argument parsed as `T`, or
    /// `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with the argument text if parsing fails.
    pub fn positional<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        match self.rest.get(i) {
            Some(s) if !s.starts_with("--") => s
                .parse()
                .unwrap_or_else(|_| panic!("could not parse argument {s:?}")),
            _ => default,
        }
    }

    /// Whether a leftover flag (e.g. `--small`) is present.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// The value of a leftover `--flag VALUE` pair (e.g. `--n 64`) parsed
    /// as `T`, or `default` when the flag is absent.
    ///
    /// # Panics
    ///
    /// Panics if the flag is present without a value, or the value does
    /// not parse.
    pub fn named<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.rest.iter().position(|a| a == flag) {
            None => default,
            Some(i) => {
                let v = self
                    .rest
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} requires a value"));
                v.parse()
                    .unwrap_or_else(|_| panic!("could not parse {flag} value {v:?}"))
            }
        }
    }

    /// Runs `self.trials` trials of `f` with per-trial seeds derived from
    /// `base_seed`, parallel unless `--sequential` was given. Results come
    /// back in trial order either way.
    pub fn run<R, F>(&self, base_seed: u64, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, u64) -> R + Sync + Send,
    {
        if self.sequential {
            run_trials_sequential(self.trials, base_seed, f)
        } else {
            run_trials(self.trials, base_seed, f)
        }
    }

    /// Maps `f` over `0..count` — across cores unless `--sequential` was
    /// given — returning results in index order either way.
    ///
    /// For binaries whose repetition knob predates `--trials` (e.g. a
    /// `[seeds]` positional) and therefore derive per-run seeds themselves
    /// rather than through [`trial_seed`](crate::workload::trial_seed).
    pub fn map_indexed<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
    {
        if self.sequential {
            (0..count).map(f).collect()
        } else {
            (0..count).into_par_iter().map(f).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> TrialOpts {
        TrialOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flag_extraction() {
        let o = parse(&[]);
        assert_eq!(o.trials, 1);
        assert!(!o.sequential);
        assert!(o.trace.is_none());
        assert!(o.rest.is_empty());

        let o = parse(&[
            "5000",
            "--trials",
            "8",
            "--sequential",
            "--trace",
            "out.jsonl",
            "--small",
        ]);
        assert_eq!(o.trials, 8);
        assert!(o.sequential);
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("out.jsonl")));
        assert_eq!(o.rest, vec!["5000".to_string(), "--small".to_string()]);
        assert_eq!(o.positional(0, 0u64), 5000);
        assert!(o.has_flag("--small"));
    }

    #[test]
    fn named_flags_parse_with_defaults() {
        let o = parse(&["--n", "64", "--trials", "2"]);
        assert_eq!(o.named("--n", 16usize), 64);
        assert_eq!(o.named("--seed", 7u64), 7);
        assert_eq!(o.trials, 2);
    }

    #[test]
    fn positional_falls_back_to_default() {
        let o = parse(&["--trials", "2"]);
        assert_eq!(o.positional::<usize>(0, 48), 48);
    }

    #[test]
    #[should_panic(expected = "--trials value must be a positive integer")]
    fn zero_trials_rejected() {
        parse(&["--trials", "0"]);
    }

    #[test]
    fn run_respects_sequential_flag_and_matches_parallel() {
        let par = parse(&["--trials", "6"]);
        let seq = parse(&["--trials", "6", "--sequential"]);
        let f = |k: usize, seed: u64| (k as u64) ^ seed.rotate_left(7);
        assert_eq!(par.run(99, f), seq.run(99, f));
    }

    #[test]
    fn map_indexed_is_ordered_and_mode_independent() {
        let par = parse(&[]);
        let seq = parse(&["--sequential"]);
        let f = |i: usize| i * i + 1;
        assert_eq!(par.map_indexed(9, f), seq.map_indexed(9, f));
        assert_eq!(par.map_indexed(3, f), vec![1, 2, 5]);
    }
}
