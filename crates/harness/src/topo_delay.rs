//! Adapter: router-topology latencies as a simulator delay model.
//!
//! Two tiers:
//!
//! * [`TopologyDelay`] — owns its topology and recomputes the (cheap, but
//!   not free) hierarchical latency decomposition on every `delay` call.
//! * [`SharedTopology`] / [`CachedTopologyDelay`] — one generated topology
//!   behind an [`Arc`], shared by any number of trials, with per-source
//!   latency rows memoized into a lazily-filled host-to-host matrix. Rows
//!   are computed once, on first use, and every clone sees them;
//!   [`SharedTopology::full_matrix`] batch-fills all rows across cores
//!   when a trial sweep is about to touch everything anyway.
//!
//! Topology generation is the expensive part (Waxman wiring plus one
//! Dijkstra per transit router plus per-stub-domain APSP — seconds at the
//! paper's 8320-router scale), so multi-trial experiments should generate
//! one [`SharedTopology`] and hand each trial a [`CachedTopologyDelay`]
//! clone instead of regenerating per trial.

use std::sync::{Arc, OnceLock};

use hyperring_sim::{DelayModel, MatrixDelay, Time};
use hyperring_topology::{HostMap, TransitStub, TransitStubConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// A [`DelayModel`] backed by a transit-stub router topology: actor `i` of
/// the simulation is host `i` of the [`HostMap`], and each message takes
/// the exact shortest-path latency between the two hosts.
///
/// This reproduces the paper's simulation setup: a GT-ITM topology with
/// 8320 routers and one end-host per overlay node.
#[derive(Debug)]
pub struct TopologyDelay {
    ts: TransitStub,
    hosts: HostMap,
}

impl TopologyDelay {
    /// Generates a topology from `cfg` and attaches `hosts` end-hosts, all
    /// derived deterministically from `seed`.
    pub fn generate(cfg: &TransitStubConfig, hosts: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = TransitStub::generate(cfg, &mut rng);
        let hosts = HostMap::attach(&ts, hosts, &mut rng);
        TopologyDelay { ts, hosts }
    }

    /// The paper's full-scale setup: 8320 routers, `hosts` end-hosts.
    pub fn paper_scale(hosts: usize, seed: u64) -> Self {
        Self::generate(&TransitStubConfig::paper_8320(), hosts, seed)
    }

    /// A small topology for tests (72 routers).
    pub fn test_scale(hosts: usize, seed: u64) -> Self {
        Self::generate(&TransitStubConfig::small(), hosts, seed)
    }

    /// Number of attached hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &TransitStub {
        &self.ts
    }

    /// The host attachment map.
    pub fn hosts(&self) -> &HostMap {
        &self.hosts
    }
}

impl DelayModel for TopologyDelay {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        self.ts.host_latency(&self.hosts, from, to).max(1)
    }
}

#[derive(Debug)]
struct SharedTopologyInner {
    ts: TransitStub,
    hosts: HostMap,
    /// Memoized host-to-host latency rows, filled on first use. Row `i`
    /// holds the (already `max(1)`-clamped) latency from host `i` to every
    /// host.
    rows: Vec<OnceLock<Arc<Vec<Time>>>>,
}

impl SharedTopologyInner {
    fn row(&self, from: usize) -> &Arc<Vec<Time>> {
        self.rows[from].get_or_init(|| Arc::new(self.compute_row(from)))
    }

    fn compute_row(&self, from: usize) -> Vec<Time> {
        (0..self.hosts.len())
            .map(|to| self.ts.host_latency(&self.hosts, from, to).max(1))
            .collect()
    }
}

/// One generated topology behind an [`Arc`], cloneable in `O(1)`, with a
/// lazily-filled host-to-host delay matrix shared by all clones.
#[derive(Debug, Clone)]
pub struct SharedTopology {
    inner: Arc<SharedTopologyInner>,
}

impl SharedTopology {
    /// Generates a topology from `cfg` and attaches `hosts` end-hosts, all
    /// derived deterministically from `seed` (the same construction as
    /// [`TopologyDelay::generate`]).
    pub fn generate(cfg: &TransitStubConfig, hosts: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = TransitStub::generate(cfg, &mut rng);
        let hosts = HostMap::attach(&ts, hosts, &mut rng);
        let rows = std::iter::repeat_with(OnceLock::new)
            .take(hosts.len())
            .collect();
        SharedTopology {
            inner: Arc::new(SharedTopologyInner { ts, hosts, rows }),
        }
    }

    /// The paper's full-scale setup: 8320 routers, `hosts` end-hosts.
    pub fn paper_scale(hosts: usize, seed: u64) -> Self {
        Self::generate(&TransitStubConfig::paper_8320(), hosts, seed)
    }

    /// A small topology for tests (72 routers).
    pub fn test_scale(hosts: usize, seed: u64) -> Self {
        Self::generate(&TransitStubConfig::small(), hosts, seed)
    }

    /// Number of attached hosts.
    pub fn host_count(&self) -> usize {
        self.inner.hosts.len()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &TransitStub {
        &self.inner.ts
    }

    /// The host attachment map.
    pub fn hosts(&self) -> &HostMap {
        &self.inner.hosts
    }

    /// Host-to-host latency (µs, clamped to ≥ 1), memoizing the whole
    /// source row on first use.
    pub fn delay(&self, from: usize, to: usize) -> Time {
        self.inner.row(from)[to]
    }

    /// A `O(1)`-per-lookup [`DelayModel`] clone sharing this topology's
    /// row cache.
    pub fn delay_model(&self) -> CachedTopologyDelay {
        CachedTopologyDelay { topo: self.clone() }
    }

    /// Batch-fills every row (independent sources, fanned across cores)
    /// and returns the dense matrix as a standalone [`MatrixDelay`].
    ///
    /// Rows already memoized by earlier lookups are reused, and rows
    /// computed here stay memoized for later [`delay`](Self::delay) calls.
    pub fn full_matrix(&self) -> MatrixDelay {
        let n = self.host_count();
        let rows: Vec<Arc<Vec<Time>>> = (0..n)
            .into_par_iter()
            .map(|from| Arc::clone(self.inner.row(from)))
            .collect();
        let mut matrix = Vec::with_capacity(n * n);
        for row in rows {
            matrix.extend_from_slice(&row);
        }
        MatrixDelay::new(n, Arc::new(matrix))
    }
}

/// A [`DelayModel`] view of a [`SharedTopology`]: each lookup is a row
/// memoization hit (or a one-time `O(n)` row fill), so per-message cost is
/// an index into shared storage.
#[derive(Debug, Clone)]
pub struct CachedTopologyDelay {
    topo: SharedTopology,
}

impl CachedTopologyDelay {
    /// The topology this model reads from.
    pub fn shared(&self) -> &SharedTopology {
        &self.topo
    }
}

impl DelayModel for CachedTopologyDelay {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        self.topo.delay(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_symmetric_positive_and_deterministic() {
        let mut a = TopologyDelay::test_scale(32, 5);
        let mut b = TopologyDelay::test_scale(32, 5);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..32 {
            for j in 0..32 {
                let d1 = a.delay(i, j, &mut rng);
                assert_eq!(d1, b.delay(i, j, &mut rng));
                assert_eq!(d1, a.delay(j, i, &mut rng));
                assert!(d1 >= 1);
            }
        }
        assert_eq!(a.host_count(), 32);
    }

    #[test]
    fn paper_scale_router_count() {
        // Construct at reduced host count to keep the test fast; the
        // router graph is the full 8320.
        let t = TopologyDelay::paper_scale(16, 1);
        assert_eq!(t.topology().router_count(), 8320);
    }

    #[test]
    fn cached_delay_matches_uncached_model() {
        let mut uncached = TopologyDelay::test_scale(24, 9);
        let shared = SharedTopology::test_scale(24, 9);
        let mut cached = shared.delay_model();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..24 {
            for j in 0..24 {
                assert_eq!(
                    cached.delay(i, j, &mut rng),
                    uncached.delay(i, j, &mut rng),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn full_matrix_matches_lazy_rows_and_shares_cache() {
        let shared = SharedTopology::test_scale(16, 3);
        // Touch a few entries first so the batch fill mixes memoized and
        // fresh rows.
        let early = shared.delay(3, 7);
        let mut matrix = shared.full_matrix();
        assert_eq!(matrix.len(), 16);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(matrix.delay(3, 7, &mut rng), early);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(matrix.get(i, j), shared.delay(i, j), "({i},{j})");
            }
        }
        // Clones share the row cache with the original.
        let clone = shared.clone();
        assert_eq!(clone.delay(15, 0), shared.delay(15, 0));
        assert_eq!(Arc::strong_count(&shared.inner), 2);
    }
}
