//! Adapter: router-topology latencies as a simulator delay model.

use hyperring_sim::{DelayModel, Time};
use hyperring_topology::{HostMap, TransitStub, TransitStubConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A [`DelayModel`] backed by a transit-stub router topology: actor `i` of
/// the simulation is host `i` of the [`HostMap`], and each message takes
/// the exact shortest-path latency between the two hosts.
///
/// This reproduces the paper's simulation setup: a GT-ITM topology with
/// 8320 routers and one end-host per overlay node.
#[derive(Debug)]
pub struct TopologyDelay {
    ts: TransitStub,
    hosts: HostMap,
}

impl TopologyDelay {
    /// Generates a topology from `cfg` and attaches `hosts` end-hosts, all
    /// derived deterministically from `seed`.
    pub fn generate(cfg: &TransitStubConfig, hosts: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = TransitStub::generate(cfg, &mut rng);
        let hosts = HostMap::attach(&ts, hosts, &mut rng);
        TopologyDelay { ts, hosts }
    }

    /// The paper's full-scale setup: 8320 routers, `hosts` end-hosts.
    pub fn paper_scale(hosts: usize, seed: u64) -> Self {
        Self::generate(&TransitStubConfig::paper_8320(), hosts, seed)
    }

    /// A small topology for tests (72 routers).
    pub fn test_scale(hosts: usize, seed: u64) -> Self {
        Self::generate(&TransitStubConfig::small(), hosts, seed)
    }

    /// Number of attached hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &TransitStub {
        &self.ts
    }

    /// The host attachment map.
    pub fn hosts(&self) -> &HostMap {
        &self.hosts
    }
}

impl DelayModel for TopologyDelay {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        self.ts.host_latency(&self.hosts, from, to).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_symmetric_positive_and_deterministic() {
        let mut a = TopologyDelay::test_scale(32, 5);
        let mut b = TopologyDelay::test_scale(32, 5);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..32 {
            for j in 0..32 {
                let d1 = a.delay(i, j, &mut rng);
                assert_eq!(d1, b.delay(i, j, &mut rng));
                assert_eq!(d1, a.delay(j, i, &mut rng));
                assert!(d1 >= 1);
            }
        }
        assert_eq!(a.host_count(), 32);
    }

    #[test]
    fn paper_scale_router_count() {
        // Construct at reduced host count to keep the test fast; the
        // router graph is the full 8320.
        let t = TopologyDelay::paper_scale(16, 1);
        assert_eq!(t.topology().router_count(), 8320);
    }
}
