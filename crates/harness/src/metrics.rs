//! Process-level measurement helpers for the scaling experiments: peak
//! resident set size and core count, reported alongside throughput so
//! benchmark rows are interpretable on any machine.

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux. The high-water mark is
/// monotone over the process lifetime, so measure a fresh process (or
/// accept an upper bound) when comparing configurations.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmhwm(&status)
}

/// Extracts `VmHWM` (kB) from a `/proc/<pid>/status` rendering, in bytes.
fn parse_vmhwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Number of cores available to this process — recorded next to any
/// sharded-vs-sequential comparison, since shard speedups are bounded by
/// it (on a single-core host the sharded scheduler degrades to ordered
/// sequential delivery and the honest ratio is ≈1×).
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmhwm_parses_proc_format() {
        let status = "Name:\tx\nVmPeak:\t  10 kB\nVmHWM:\t  2048 kB\nThreads:\t1\n";
        assert_eq!(parse_vmhwm(status), Some(2 * 1024 * 1024));
        assert_eq!(parse_vmhwm("Name:\tx\n"), None);
    }

    #[test]
    fn cores_is_positive() {
        assert!(cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_this_process() {
        let rss = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(rss > 0);
    }
}
