//! Process-level measurement helpers for the scaling experiments: peak
//! resident set size and core count, reported alongside throughput so
//! benchmark rows are interpretable on any machine.

/// The `p`-th percentile of `samples` (nearest-rank over a sorted copy),
/// or `None` when empty. `p` is clamped to `[0, 100]`; `p = 50` is the
/// median, `p = 100` the maximum.
pub fn percentile(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * (sorted.len() as f64)).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux. The high-water mark is
/// monotone over the process lifetime, so measure a fresh process (or
/// accept an upper bound) when comparing configurations.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmhwm(&status)
}

/// Extracts `VmHWM` (kB) from a `/proc/<pid>/status` rendering, in bytes.
fn parse_vmhwm(status: &str) -> Option<u64> {
    parse_kb_line(status, "VmHWM:")
}

/// Current resident set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`), or `None` off Linux. Unlike
/// [`peak_rss_bytes`] this is an instantaneous reading — subtract it from
/// a later high-water mark to attribute peak memory to one phase.
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_kb_line(&status, "VmRSS:")
}

fn parse_kb_line(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the peak-RSS high-water mark to the current RSS by writing `5`
/// to `/proc/self/clear_refs` (Linux ≥ 4.0). Returns whether the reset
/// took effect; callers fall back to whole-process peaks when it did not
/// (non-Linux, or a locked-down `/proc`). Phase-scoped measurement:
/// `reset_peak_rss(); …phase…; peak_rss_bytes()` bounds the phase's peak
/// instead of the process lifetime's.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Number of cores available to this process — recorded next to any
/// sharded-vs-sequential comparison, since shard speedups are bounded by
/// it (on a single-core host the sharded scheduler degrades to ordered
/// sequential delivery and the honest ratio is ≈1×).
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmhwm_parses_proc_format() {
        let status = "Name:\tx\nVmPeak:\t  10 kB\nVmHWM:\t  2048 kB\nThreads:\t1\n";
        assert_eq!(parse_vmhwm(status), Some(2 * 1024 * 1024));
        assert_eq!(parse_vmhwm("Name:\tx\n"), None);
    }

    #[test]
    fn cores_is_positive() {
        assert!(cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_this_process() {
        let rss = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(rss > 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn current_rss_is_at_most_peak() {
        let cur = current_rss_bytes().expect("linux exposes VmRSS");
        let peak = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(cur > 0);
        assert!(cur <= peak, "VmRSS {cur} above VmHWM {peak}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reset_peak_rss_lowers_the_watermark() {
        // Allocate-and-drop to push the high-water mark above current RSS,
        // then reset and confirm the mark came back down near current.
        let ballast = vec![1u8; 64 * 1024 * 1024];
        std::hint::black_box(&ballast);
        drop(ballast);
        if !reset_peak_rss() {
            return; // /proc/self/clear_refs unavailable; nothing to check
        }
        let cur = current_rss_bytes().unwrap();
        let peak = peak_rss_bytes().unwrap();
        assert!(
            peak < cur + 32 * 1024 * 1024,
            "watermark {peak} not reset near current {cur}"
        );
    }
}
