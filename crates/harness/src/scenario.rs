//! The unified scenario runner: one builder for every way this repo runs
//! a network.
//!
//! Before this module, each entry point grew its own shape —
//! `baseline::run_optimistic` and `baseline::run_paper_protocol` took a
//! [`JoinWorkload`] plus loose arguments and returned a `BaselineResult`,
//! while `hyperring_net::ThreadedNetwork::run_joins` took raw tables and
//! returned raw tables. A [`Scenario`] folds them into one builder:
//!
//! ```
//! use hyperring_harness::{RunReport, Scenario};
//! use hyperring_id::IdSpace;
//!
//! let space = IdSpace::new(8, 4)?;
//! let r: RunReport = Scenario::new(space).nodes(12).joiners(6).seed(7).run_sim();
//! assert!(r.consistent());
//! assert_eq!(r.joiners, 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same scenario runs on the deterministic simulator
//! ([`run_sim`](Scenario::run_sim)), on real threads
//! ([`run_net`](Scenario::run_net)), or under the optimistic
//! Pastry-style baseline ([`optimistic`](Scenario::optimistic)), and —
//! with a [`FailureDetector`](hyperring_core::FailureDetector) configured
//! via [`options`](Scenario::options) — under crash churn
//! ([`crashes`](Scenario::crashes)).

use std::time::Duration;

use hyperring_core::{
    build_consistent_tables, check_consistency_streaming, check_reachability_refs,
    ConsistencyReport, NeighborTable, ProtocolOptions, SimNetworkBuilder, TraceSink, Violation,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_net::{NetError, ThreadedNetwork};
use hyperring_sim::{Time, UniformDelay};

use crate::baseline::run_optimistic_tables;
use crate::lookup::{run_schedule, storm_keys, LookupStats, StormSchedule};
use crate::workload::JoinWorkload;
use hyperring_object::ObjectStore;

/// Outcome metrics of one scenario run, whatever the backend.
///
/// This is the former `BaselineResult` (kept as a deprecated alias),
/// extended with crash-churn population counts so one report type covers
/// the baseline comparison, the paper protocol, and churn runs.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of joiners in the run.
    pub joiners: usize,
    /// Nodes crashed mid-run (0 outside crash scenarios).
    pub crashed: usize,
    /// Live nodes whose tables the consistency check covers.
    pub survivors: usize,
    /// Full Definition-3.8 consistency report over the final (survivor)
    /// tables.
    pub report: ConsistencyReport,
    /// False-negative violations (the reachability-breaking kind).
    pub false_negatives: usize,
    /// `(source, target)` pairs that cannot route to each other.
    pub unreachable_pairs: usize,
    /// Total ordered pairs checked.
    pub total_pairs: usize,
    /// Virtual (sim) or wall-clock (net) microseconds at the end of the
    /// run, when the backend reports one (0 for the threaded backend).
    pub finished_at: u64,
    /// Keyed lookup-storm statistics over the final tables, when the
    /// scenario asked for one via [`Scenario::lookup_storm`] (`None`
    /// otherwise; stretch is always `None` here — scenarios have no
    /// latency oracle).
    pub lookup: Option<LookupStats>,
}

impl RunReport {
    /// Whether the run ended with fully consistent (survivor) tables.
    pub fn consistent(&self) -> bool {
        self.report.is_consistent()
    }
}

/// The former name of [`RunReport`], from when only the optimistic
/// baseline produced one.
#[deprecated(note = "renamed to `RunReport`; use `Scenario` to produce it")]
pub type BaselineResult = RunReport;

/// Summarizes a set of final tables into a [`RunReport`] — the shared
/// tail of every backend. Takes borrowed tables so simulator runs feed it
/// straight from [`SimNetwork::tables_iter`](hyperring_core::SimNetwork::tables_iter)
/// without cloning the table set.
pub(crate) fn summarize(
    space: IdSpace,
    tables: &[&NeighborTable],
    joiners: usize,
    crashed: usize,
    finished_at: u64,
) -> RunReport {
    let report = check_consistency_streaming(space, tables.iter().copied());
    let false_negatives = report
        .violations()
        .iter()
        .filter(|v| matches!(v, Violation::FalseNegative { .. }))
        .count();
    let unreachable = check_reachability_refs(tables);
    let n = tables.len();
    RunReport {
        joiners,
        crashed,
        survivors: n,
        report,
        false_negatives,
        unreachable_pairs: unreachable.len(),
        total_pairs: n.saturating_sub(1) * n,
        finished_at,
        lookup: None,
    }
}

/// Runs one keyed storm over borrowed final tables — the shared tail of
/// every backend's [`Scenario::lookup_storm`] handling.
fn storm_over(
    space: IdSpace,
    tables: &[&NeighborTable],
    (lookups, keys, exponent): (usize, usize, f64),
    seed: u64,
) -> LookupStats {
    let sources: Vec<NodeId> = tables.iter().map(|t| t.owner()).collect();
    let schedule = StormSchedule::compile(
        sources,
        storm_keys(space, "scenario-key", keys),
        lookups,
        exponent,
        seed ^ 0x5ca1_ab1e_0b57_ac1e,
    );
    let store = ObjectStore::over(space, tables.iter().copied());
    run_schedule(&store, &schedule, None, None)
}

/// Draws `k` crash victims from `members` without replacement,
/// deterministically from `seed` (a partial Fisher–Yates over a
/// seed-separated stream, so the draw is independent of the workload's
/// own randomness).
pub(crate) fn pick_victims(members: &[NodeId], k: usize, seed: u64) -> Vec<NodeId> {
    use rand::{Rng, SeedableRng};
    let mut order: Vec<NodeId> = members.to_vec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc3a5_c85c_97cb_3127);
    for i in 0..k {
        let j = rng.gen_range(i..order.len());
        order.swap(i, j);
    }
    order.truncate(k);
    order
}

/// Which join protocol a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Protocol {
    /// The paper's consistency-preserving protocol (the default).
    #[default]
    Paper,
    /// The optimistic Pastry-style baseline (simulator only).
    Optimistic,
}

/// Builder for one network run: population, seed, options, backend.
///
/// Defaults: 16 members, 8 joiners, seed 0, default [`ProtocolOptions`],
/// the paper's protocol, uniform message delay in `[1 ms, 100 ms]` (the
/// bounds the baseline comparison has always used), all joins at t = 0,
/// no crashes.
pub struct Scenario {
    space: IdSpace,
    members: usize,
    joiners: usize,
    seed: u64,
    opts: ProtocolOptions,
    protocol: Protocol,
    gap_us: Time,
    delay_bounds: (Time, Time),
    crashes: usize,
    crash_at: Time,
    horizon: Time,
    workload: Option<JoinWorkload>,
    trace: Option<Box<dyn TraceSink + Send>>,
    storm: Option<(usize, usize, f64)>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("space", &self.space)
            .field("members", &self.members)
            .field("joiners", &self.joiners)
            .field("seed", &self.seed)
            .field("protocol", &self.protocol)
            .field("crashes", &self.crashes)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Starts a scenario over `space` with the defaults above.
    pub fn new(space: IdSpace) -> Self {
        Scenario {
            space,
            members: 16,
            joiners: 8,
            seed: 0,
            opts: ProtocolOptions::new(),
            protocol: Protocol::default(),
            gap_us: 0,
            delay_bounds: (1_000, 100_000),
            crashes: 0,
            crash_at: 0,
            horizon: 0,
            workload: None,
            trace: None,
            storm: None,
        }
    }

    /// Sets the number of initial members (the consistent network `V`).
    pub fn nodes(mut self, n: usize) -> Self {
        self.members = n;
        self
    }

    /// Sets the number of joiners.
    pub fn joiners(mut self, m: usize) -> Self {
        self.joiners = m;
        self
    }

    /// Sets the workload seed (identifier draw, gateways, delays).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the protocol options handed to every engine.
    pub fn options(mut self, opts: ProtocolOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Runs the optimistic Pastry-style baseline instead of the paper's
    /// protocol (simulator backend only).
    pub fn optimistic(mut self) -> Self {
        self.protocol = Protocol::Optimistic;
        self
    }

    /// Spaces join starts `gap_us` apart instead of all at t = 0 (a large
    /// gap approximates sequential joins).
    pub fn join_gap_us(mut self, gap_us: Time) -> Self {
        self.gap_us = gap_us;
        self
    }

    /// Sets the uniform message-delay bounds (µs) of the simulator
    /// backend.
    pub fn delay_bounds(mut self, min: Time, max: Time) -> Self {
        self.delay_bounds = (min, max);
        self
    }

    /// Crashes `k` nodes (drawn deterministically from the members, who
    /// are `in_system` throughout) at virtual time `at`, then runs the
    /// survivors to the `horizon`. Meaningful only with a
    /// [`FailureDetector`](hyperring_core::FailureDetector) configured —
    /// without one the dead stay in every survivor's table.
    ///
    /// # Panics
    ///
    /// [`run_sim`](Self::run_sim) panics if `k` is not smaller than the
    /// member count.
    pub fn crashes(mut self, k: usize, at: Time, horizon: Time) -> Self {
        self.crashes = k;
        self.crash_at = at;
        self.horizon = horizon;
        self
    }

    /// Uses a pre-built workload instead of generating one from
    /// (`nodes`, `joiners`, `seed`).
    pub fn workload(mut self, w: JoinWorkload) -> Self {
        self.space = w.space;
        self.members = w.members.len();
        self.joiners = w.joiners.len();
        self.workload = Some(w);
        self
    }

    /// Runs a keyed lookup storm over the final tables: `lookups` draws
    /// with sources uniform over the survivors and keys
    /// Zipf(`exponent`)-popular over `keys` object identifiers. The storm
    /// is a pure observation after the run ends; its [`LookupStats`] land
    /// in [`RunReport::lookup`].
    pub fn lookup_storm(mut self, lookups: usize, keys: usize, exponent: f64) -> Self {
        self.storm = Some((lookups, keys, exponent));
        self
    }

    /// Attaches a [`TraceSink`] receiving every node's protocol events
    /// (simulator: virtual-time stamped and deterministic per seed;
    /// threads: wall-clock stamped). Implies trace emission.
    pub fn trace(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.trace = Some(sink);
        self
    }

    fn take_workload(&mut self) -> JoinWorkload {
        self.workload.take().unwrap_or_else(|| {
            JoinWorkload::generate(self.space, self.members, self.joiners, self.seed)
        })
    }

    /// The nodes a crash schedule kills: the first `crashes` members in a
    /// deterministic seed-derived shuffle (members are `in_system` from
    /// t = 0, so the schedule never races a join).
    fn victims(&self, w: &JoinWorkload) -> Vec<NodeId> {
        assert!(
            self.crashes < w.members.len(),
            "cannot crash {} of {} members",
            self.crashes,
            w.members.len()
        );
        pick_victims(&w.members, self.crashes, self.seed)
    }

    /// Runs the scenario on the deterministic discrete-event simulator
    /// and summarizes the final (survivor) tables.
    ///
    /// # Panics
    ///
    /// Panics if the run fails to quiesce (ruled out by Theorem 2 absent
    /// bugs), or on an optimistic run with crashes (the baseline has no
    /// failure handling to measure).
    pub fn run_sim(mut self) -> RunReport {
        let w = self.take_workload();
        if self.protocol == Protocol::Optimistic {
            assert!(
                self.crashes == 0,
                "the optimistic baseline has no crash handling"
            );
            let tables = run_optimistic_tables(&w, self.seed, self.gap_us, self.delay_bounds);
            let refs: Vec<&NeighborTable> = tables.iter().collect();
            let mut r = summarize(w.space, &refs, w.joiners.len(), 0, 0);
            r.lookup = self
                .storm
                .map(|cfg| storm_over(w.space, &refs, cfg, self.seed));
            return r;
        }
        let mut b = SimNetworkBuilder::new(w.space);
        b.options(self.opts);
        if let Some(sink) = self.trace.take() {
            b.trace(sink);
        }
        for id in &w.members {
            b.add_member(*id);
        }
        for (i, (id, gw)) in w.joiners.iter().enumerate() {
            b.add_joiner(*id, *gw, i as Time * self.gap_us);
        }
        let (lo, hi) = self.delay_bounds;
        let mut net = b.build(UniformDelay::new(lo, hi), self.seed);
        let (crashed, report) = if self.crashes > 0 {
            for id in self.victims(&w) {
                net.crash_at(&id, self.crash_at);
            }
            (self.crashes, net.run_until(self.horizon))
        } else if self.opts.failure_detector().is_some() {
            // The probe tick re-arms forever; a horizon bounds the run.
            let horizon = if self.horizon > 0 {
                self.horizon
            } else {
                Time::MAX
            };
            (0, net.run_until(horizon))
        } else {
            let report = net.run();
            assert!(!report.truncated, "scenario did not quiesce");
            assert!(net.all_in_system(), "a joiner failed to finish");
            (0, report)
        };
        let refs: Vec<&NeighborTable> = net.tables_iter().collect();
        let mut r = summarize(w.space, &refs, w.joiners.len(), crashed, report.finished_at);
        r.lookup = self
            .storm
            .map(|cfg| storm_over(w.space, &refs, cfg, self.seed));
        r
    }

    /// Runs the scenario on real threads ([`ThreadedNetwork`]) and
    /// summarizes the final (survivor) tables. With a crash schedule, the
    /// victims' threads are killed after the joins quiesce and survivors
    /// get a grace period scaled from the configured probe interval;
    /// `crash_at`/`horizon` are virtual-time knobs and are ignored here.
    ///
    /// # Errors
    ///
    /// Whatever [`ThreadedNetwork::run_joins`] /
    /// [`ThreadedNetwork::run_crash_scenario`] report.
    ///
    /// # Panics
    ///
    /// Panics on an optimistic scenario (the baseline exists only on the
    /// simulator) and on a crash schedule without a failure detector.
    pub fn run_net(mut self) -> Result<RunReport, NetError> {
        assert!(
            self.protocol == Protocol::Paper,
            "the optimistic baseline runs on the simulator only"
        );
        let w = self.take_workload();
        let members = build_consistent_tables(w.space, &w.members);
        let mut net = ThreadedNetwork::new(w.space, self.opts, members);
        if let Some(sink) = self.trace.take() {
            net = net.with_trace(sink);
        }
        let tables = if self.crashes > 0 {
            let fd = self
                .opts
                .failure_detector()
                .expect("a crash scenario needs a failure detector");
            let victims = self.victims(&w);
            // Detection needs `suspicion_threshold` silent ticks, repair a
            // few more; wall-clock scheduling is best-effort, so be
            // generous.
            let grace = Duration::from_micros(
                fd.probe_interval_us * (u64::from(fd.suspicion_threshold) + 12),
            );
            net.run_crash_scenario(&w.joiners, &victims, grace)?
        } else {
            net.run_joins(&w.joiners)?
        };
        let refs: Vec<&NeighborTable> = tables.iter().collect();
        let mut r = summarize(w.space, &refs, w.joiners.len(), self.crashes, 0);
        r.lookup = self
            .storm
            .map(|cfg| storm_over(w.space, &refs, cfg, self.seed));
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::{FailureDetector, RetryPolicy};

    fn space() -> IdSpace {
        IdSpace::new(4, 5).unwrap()
    }

    #[test]
    fn sim_and_net_backends_agree_on_the_paper_protocol() {
        let sim = Scenario::new(space())
            .nodes(10)
            .joiners(5)
            .seed(3)
            .run_sim();
        assert!(sim.consistent(), "{}", sim.report);
        assert_eq!(sim.joiners, 5);
        assert_eq!(sim.survivors, 15);
        assert_eq!(sim.unreachable_pairs, 0);
        assert_eq!(sim.total_pairs, 15 * 14);

        let net = Scenario::new(space())
            .nodes(10)
            .joiners(5)
            .seed(3)
            .run_net()
            .expect("threaded run quiesces");
        assert!(net.consistent(), "{}", net.report);
        assert_eq!(net.survivors, 15);
    }

    #[test]
    fn optimistic_backend_reports_violations_under_concurrency() {
        let sp = IdSpace::new(4, 6).unwrap();
        let mut broke = 0;
        for seed in 0..6 {
            let r = Scenario::new(sp)
                .nodes(16)
                .joiners(48)
                .seed(seed)
                .optimistic()
                .run_sim();
            if !r.consistent() {
                broke += 1;
            }
        }
        assert!(broke > 0, "optimistic joins survived heavy concurrency");
    }

    #[test]
    fn crash_scenario_repairs_survivors_on_the_simulator() {
        let fd = FailureDetector {
            probe_interval_us: 100_000,
            suspicion_threshold: 3,
            repair: true,
            ..FailureDetector::default()
        };
        let r = Scenario::new(space())
            .nodes(14)
            .joiners(0)
            .seed(5)
            .options(ProtocolOptions::new().with_failure_detector(fd))
            .delay_bounds(500, 2_000)
            .crashes(3, 50_000, 3_000_000)
            .run_sim();
        assert_eq!(r.crashed, 3);
        assert_eq!(r.survivors, 11);
        assert!(r.consistent(), "{}", r.report);
    }

    #[test]
    fn preset_workload_overrides_generation() {
        let w = JoinWorkload::generate(space(), 6, 2, 9);
        let members = w.members.clone();
        let r = Scenario::new(space()).workload(w).seed(9).run_sim();
        assert_eq!(r.joiners, 2);
        assert_eq!(r.survivors, members.len() + 2);
        assert!(r.consistent());
    }

    #[test]
    fn scenario_storm_reports_full_lookup_stats() {
        let r = Scenario::new(space())
            .nodes(12)
            .joiners(4)
            .seed(13)
            .lookup_storm(300, 10, 0.9)
            .run_sim();
        assert!(r.consistent());
        let s = r.lookup.expect("storm requested");
        assert_eq!(s.lookups, 300);
        assert_eq!(s.keys, 10);
        assert_eq!(s.hop_histogram.iter().sum::<u64>(), 300);
        assert!(s.stretch.is_none());
        // Without a storm the field stays empty.
        let plain = Scenario::new(space())
            .nodes(8)
            .joiners(2)
            .seed(13)
            .run_sim();
        assert!(plain.lookup.is_none());
    }

    #[test]
    fn retry_options_pass_through() {
        let r = Scenario::new(space())
            .nodes(8)
            .joiners(4)
            .seed(11)
            .options(ProtocolOptions::new().with_retry(RetryPolicy::default()))
            .run_sim();
        assert!(r.consistent());
    }
}
