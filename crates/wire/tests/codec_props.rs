//! Property tests of the wire codec: every message type round-trips over
//! every id-space shape, and the decoder survives arbitrary, truncated,
//! bit-flipped, and wrong-version bytes without panicking.

use hyperring_core::{BitVec, Entry, Message, NodeState, SnapshotRow, TableSnapshot};
use hyperring_id::{IdSpace, NodeId};
use hyperring_wire::{
    decode_datagram, decode_frame, encode_frame, max_frame_len, WireError, LEN_PREFIX, WIRE_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mix of nibble-packed (base <= 16) and byte-per-digit spaces, odd and
/// even digit counts.
fn spaces() -> Vec<IdSpace> {
    [(2u16, 10usize), (4, 5), (8, 4), (16, 8), (17, 3), (36, 4)]
        .iter()
        .map(|&(b, d)| IdSpace::new(b, d).unwrap())
        .collect()
}

fn random_entry(space: &IdSpace, rng: &mut StdRng) -> Entry {
    Entry {
        node: space.random_id(rng),
        state: if rng.gen_bool(0.5) {
            NodeState::S
        } else {
            NodeState::T
        },
    }
}

fn random_table(space: &IdSpace, rng: &mut StdRng) -> TableSnapshot {
    let d = space.digit_count();
    let b = space.base() as usize;
    let rows = rng.gen_range(0..=(d * b).min(24));
    let rows = (0..rows)
        .map(|_| SnapshotRow {
            level: rng.gen_range(0..d) as u8,
            digit: rng.gen_range(0..b) as u8,
            entry: random_entry(space, rng),
        })
        .collect();
    TableSnapshot::from_rows(space.random_id(rng), rows)
}

fn random_bitvec(space: &IdSpace, rng: &mut StdRng) -> BitVec {
    let slots = space.digit_count() * space.base() as usize;
    let words = rng.gen_range(0..=slots.div_ceil(64));
    BitVec {
        noti_level: rng.gen_range(0..=space.digit_count()) as u8,
        words: (0..words).map(|_| rng.gen_range(0..u64::MAX)).collect(),
    }
}

/// One random message of the given kind index (0..18, the wire kinds).
fn random_message(space: &IdSpace, kind: usize, rng: &mut StdRng) -> Message {
    let d = space.digit_count();
    let b = space.base() as usize;
    let id = |rng: &mut StdRng| -> NodeId { space.random_id(rng) };
    match kind {
        0 => Message::CpRst {
            level: rng.gen_range(0..=d) as u8,
        },
        1 => Message::CpRly {
            level: rng.gen_range(0..=d) as u8,
            table: random_table(space, rng),
        },
        2 => Message::JoinWait,
        3 => Message::JoinWaitRly {
            positive: rng.gen_bool(0.5),
            next: id(rng),
            table: random_table(space, rng),
        },
        4 => Message::JoinNoti {
            table: random_table(space, rng),
            filled_bits: if rng.gen_bool(0.5) {
                Some(random_bitvec(space, rng))
            } else {
                None
            },
        },
        5 => Message::JoinNotiRly {
            positive: rng.gen_bool(0.5),
            table: random_table(space, rng),
            flag: rng.gen_bool(0.5),
        },
        6 => Message::InSysNoti,
        7 => Message::SpeNoti {
            initiator: id(rng),
            subject: id(rng),
        },
        8 => Message::SpeNotiRly { subject: id(rng) },
        9 => Message::RvNghNoti {
            recorded: random_entry(space, rng).state,
        },
        10 => Message::RvNghNotiRly {
            actual: random_entry(space, rng).state,
        },
        11 => Message::LeaveNoti {
            replacement: if rng.gen_bool(0.5) {
                Some(random_entry(space, rng))
            } else {
                None
            },
        },
        12 => Message::LeaveNotiRly,
        13 => Message::RvNghForget,
        14 => Message::Ping,
        15 => Message::Pong,
        16 => Message::RepairQry {
            origin: id(rng),
            target: id(rng),
            level: rng.gen_range(0..d) as u8,
            digit: rng.gen_range(0..b) as u8,
        },
        17 => Message::RepairRly {
            level: rng.gen_range(0..d) as u8,
            digit: rng.gen_range(0..b) as u8,
            found: if rng.gen_bool(0.5) {
                Some(random_entry(space, rng))
            } else {
                None
            },
        },
        _ => unreachable!("18 wire kinds"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Encode → decode → re-encode is byte-identical for every message
    /// kind over every space shape, and the sender survives the trip.
    #[test]
    fn round_trip_all_kinds_all_spaces(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for space in spaces() {
            for kind in 0..18usize {
                let from = space.random_id(&mut rng);
                let msg = random_message(&space, kind, &mut rng);
                let mut buf = Vec::new();
                let n = encode_frame(&space, from, &msg, &mut buf);
                prop_assert_eq!(n, buf.len());
                prop_assert!(n <= max_frame_len(&space));
                let (got_from, got) = decode_datagram(&space, &buf)
                    .map_err(|e| TestCaseError::fail(format!("kind {kind}: {e}")))?;
                prop_assert_eq!(got_from, from);
                let mut again = Vec::new();
                encode_frame(&space, got_from, &got, &mut again);
                prop_assert_eq!(&buf, &again, "kind {} re-encode differs", kind);
            }
        }
    }

    /// Several frames back to back decode in sequence via the stream API.
    #[test]
    fn frames_concatenate_for_stream_reads(seed in 0u64..1_000_000, count in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = IdSpace::new(4, 5).unwrap();
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for _ in 0..count {
            let from = space.random_id(&mut rng);
            let msg = random_message(&space, rng.gen_range(0..18), &mut rng);
            lens.push(encode_frame(&space, from, &msg, &mut buf));
        }
        let mut off = 0;
        for &expect in &lens {
            let (_, _, consumed) = decode_frame(&space, &buf[off..]).unwrap();
            prop_assert_eq!(consumed, expect);
            off += consumed;
        }
        prop_assert_eq!(off, buf.len());
    }

    /// Every strict prefix of a valid frame is rejected, never panics.
    #[test]
    fn truncated_frames_are_rejected(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = IdSpace::new(16, 8).unwrap();
        let from = space.random_id(&mut rng);
        let msg = random_message(&space, rng.gen_range(0..18), &mut rng);
        let mut buf = Vec::new();
        encode_frame(&space, from, &msg, &mut buf);
        let cut = rng.gen_range(0..buf.len());
        prop_assert!(decode_frame(&space, &buf[..cut]).is_err());
    }

    /// A length prefix beyond the space maximum is rejected up front.
    #[test]
    fn oversized_frames_are_rejected(extra in 1u32..1_000_000) {
        let space = IdSpace::new(4, 5).unwrap();
        let max = (hyperring_wire::max_payload_len(&space)) as u32;
        let declared = max.saturating_add(extra);
        let mut buf = declared.to_le_bytes().to_vec();
        buf.resize(LEN_PREFIX + 16, 0);
        match decode_frame(&space, &buf) {
            Err(WireError::Oversized { len, .. }) => prop_assert_eq!(len, declared),
            other => return Err(TestCaseError::fail(format!("expected Oversized, got {other:?}"))),
        }
    }

    /// Any version byte but the current one is rejected.
    #[test]
    fn wrong_version_frames_are_rejected(seed in 0u64..1_000_000, version in 0u16..256) {
        let version = version as u8;
        let mut rng = StdRng::seed_from_u64(seed);
        let space = IdSpace::new(4, 5).unwrap();
        let from = space.random_id(&mut rng);
        let msg = random_message(&space, rng.gen_range(0..18), &mut rng);
        let mut buf = Vec::new();
        encode_frame(&space, from, &msg, &mut buf);
        buf[LEN_PREFIX] = version;
        if version == WIRE_VERSION {
            prop_assert!(decode_frame(&space, &buf).is_ok());
        } else {
            prop_assert_eq!(decode_frame(&space, &buf).err(), Some(WireError::BadVersion(version)));
        }
    }

    /// Completely arbitrary bytes: decode returns, it never panics, and an
    /// accidental success must describe a message that re-encodes cleanly.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u16..256, 0..256)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        for space in spaces() {
            if let Ok((from, msg, consumed)) = decode_frame(&space, &bytes) {
                prop_assert!(consumed <= bytes.len());
                let mut again = Vec::new();
                let n = encode_frame(&space, from, &msg, &mut again);
                prop_assert_eq!(n, consumed, "canonical encoding length");
                prop_assert_eq!(&again[..], &bytes[..consumed], "decode of valid bytes is canonical");
            }
        }
    }

    /// One flipped byte in a valid frame either fails cleanly or decodes
    /// to some message that re-encodes without panicking.
    #[test]
    fn single_byte_corruption_is_safe(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = IdSpace::new(4, 5).unwrap();
        let from = space.random_id(&mut rng);
        let msg = random_message(&space, rng.gen_range(0..18), &mut rng);
        let mut buf = Vec::new();
        encode_frame(&space, from, &msg, &mut buf);
        let at = rng.gen_range(0..buf.len());
        let bit = rng.gen_range(0..8u32);
        buf[at] ^= 1 << bit;
        if let Ok((got_from, got, _)) = decode_frame(&space, &buf) {
            let mut again = Vec::new();
            encode_frame(&space, got_from, &got, &mut again);
        }
    }
}
