//! Length-prefixed binary framing for the join-protocol messages.
//!
//! This crate is the byte-level boundary between the sans-io
//! [`JoinEngine`](hyperring_core::JoinEngine) and a real transport: every
//! [`Message`] (all 18 protocol types, the paper's Figure 4 plus the
//! extensions) round-trips through a compact hand-rolled encoding with no
//! external dependencies.
//!
//! # Frame layout
//!
//! ```text
//! [len: u32 LE]  [version: u8]  [kind: u8]  [from: packed id]  [body...]
//! ```
//!
//! `len` counts everything after itself (version byte through the end of
//! the body), so a stream reader can split frames knowing only the first
//! four bytes. One UDP datagram carries exactly one frame; trailing bytes
//! are a decode error.
//!
//! Identifiers are packed least-significant digit first: one nibble per
//! digit when the base fits four bits (`b <= 16`), one byte per digit
//! otherwise. With an odd digit count under nibble packing the final high
//! nibble must be zero — non-zero padding is rejected, so every message
//! has exactly one encoding.
//!
//! # Strictness
//!
//! [`decode_frame`] never panics on arbitrary bytes. Every length is
//! bounds-checked before use ([`WireError::Truncated`], with row and word
//! counts additionally capped by the id-space geometry before any
//! allocation), the version and kind bytes are matched exactly, booleans
//! and state bytes must be `0`/`1`, digits must be below the base, and
//! levels must be at most `d`. [`WIRE_VERSION`] is bumped whenever any
//! encoding changes shape; there is no in-band negotiation — a frame with
//! any other version byte is rejected, which is the right failure mode for
//! a protocol whose peers are expected to upgrade in lockstep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use hyperring_core::{BitVec, Entry, Message, NodeState, SnapshotRow, TableSnapshot};
use hyperring_id::{IdSpace, NodeId};

/// Version byte stamped on (and required of) every frame.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of the length prefix.
pub const LEN_PREFIX: usize = 4;

/// Everything that can go wrong turning bytes back into a [`Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure it promised.
    Truncated,
    /// The length prefix exceeds the maximum frame for this id space.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// Maximum payload length for the space.
        max: u32,
    },
    /// The version byte was not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The kind byte named no message type.
    BadKind(u8),
    /// Bytes remained after a structurally complete frame.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A field inside the body violated its invariant.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { len, max } => {
                write!(f, "declared payload {len} exceeds space maximum {max}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Packed bytes of one identifier in `space`.
pub fn packed_id_len(space: &IdSpace) -> usize {
    let d = space.digit_count();
    if space.base() <= 16 {
        d.div_ceil(2)
    } else {
        d
    }
}

/// Upper bound on the payload (post-prefix) bytes of any frame in `space`.
///
/// The bound is the largest message body — a `JoinWaitRlyMsg` carrying a
/// completely full table — plus a worst-case bit vector, so a receive
/// buffer of `LEN_PREFIX + max_payload_len` bytes fits every datagram.
pub fn max_payload_len(space: &IdSpace) -> usize {
    let id = packed_id_len(space);
    let d = space.digit_count();
    let b = space.base() as usize;
    let slots = d * b;
    let table = id + 2 + slots * (2 + id + 1);
    let bitvec = 1 + 2 + slots.div_ceil(64) * 8;
    // version + kind + from + (bool + next id + table) + bitvec headroom.
    2 + id + (1 + id + table) + bitvec
}

/// Upper bound on a whole frame (prefix included) in `space`.
pub fn max_frame_len(space: &IdSpace) -> usize {
    LEN_PREFIX + max_payload_len(space)
}

/// Appends the packed form of `id` onto `buf` (the same packing frames
/// use for every embedded identifier). Transports use this for their own
/// addressing headers — e.g. a destination id in front of a frame when one
/// socket serves many engines.
pub fn encode_id(space: &IdSpace, id: &NodeId, buf: &mut Vec<u8>) {
    put_id(space, id, buf);
}

/// Decodes one packed identifier from the front of `bytes`, returning the
/// id and the bytes consumed. Same strictness as in-frame ids: digits must
/// be below the base, padding nibbles zero.
pub fn decode_id(space: &IdSpace, bytes: &[u8]) -> Result<(NodeId, usize), WireError> {
    let mut r = Reader { bytes, pos: 0 };
    let id = r.id(space)?;
    Ok((id, r.pos))
}

fn kind_byte(msg: &Message) -> u8 {
    match msg {
        Message::CpRst { .. } => 0,
        Message::CpRly { .. } => 1,
        Message::JoinWait => 2,
        Message::JoinWaitRly { .. } => 3,
        Message::JoinNoti { .. } => 4,
        Message::JoinNotiRly { .. } => 5,
        Message::InSysNoti => 6,
        Message::SpeNoti { .. } => 7,
        Message::SpeNotiRly { .. } => 8,
        Message::RvNghNoti { .. } => 9,
        Message::RvNghNotiRly { .. } => 10,
        Message::LeaveNoti { .. } => 11,
        Message::LeaveNotiRly => 12,
        Message::RvNghForget => 13,
        Message::Ping => 14,
        Message::Pong => 15,
        Message::RepairQry { .. } => 16,
        Message::RepairRly { .. } => 17,
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_id(space: &IdSpace, id: &NodeId, out: &mut Vec<u8>) {
    let digits = id.digits_lsd();
    debug_assert_eq!(digits.len(), space.digit_count(), "id from a foreign space");
    if space.base() <= 16 {
        let mut i = 0;
        while i < digits.len() {
            let lo = digits[i];
            let hi = if i + 1 < digits.len() {
                digits[i + 1]
            } else {
                0
            };
            out.push((hi << 4) | lo);
            i += 2;
        }
    } else {
        out.extend_from_slice(digits);
    }
}

fn put_state(state: NodeState, out: &mut Vec<u8>) {
    out.push(match state {
        NodeState::T => 0,
        NodeState::S => 1,
    });
}

fn put_entry(space: &IdSpace, entry: &Entry, out: &mut Vec<u8>) {
    put_id(space, &entry.node, out);
    put_state(entry.state, out);
}

fn put_opt_entry(space: &IdSpace, entry: &Option<Entry>, out: &mut Vec<u8>) {
    match entry {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            put_entry(space, e, out);
        }
    }
}

fn put_table(space: &IdSpace, table: &TableSnapshot, out: &mut Vec<u8>) {
    put_id(space, &table.owner(), out);
    let rows = table.rows();
    debug_assert!(rows.len() <= u16::MAX as usize);
    out.extend_from_slice(&(rows.len() as u16).to_le_bytes());
    for row in rows {
        out.push(row.level);
        out.push(row.digit);
        put_entry(space, &row.entry, out);
    }
}

fn put_bitvec(bits: &BitVec, out: &mut Vec<u8>) {
    out.push(bits.noti_level);
    debug_assert!(bits.words.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bits.words.len() as u16).to_le_bytes());
    for w in &bits.words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Appends one frame for `msg` from `from` onto `buf` and returns the
/// frame's length in bytes.
///
/// `buf` is not cleared: a runtime keeps one scratch `Vec` per socket,
/// clears it between datagrams, and encodes straight into it — the only
/// copies are the field bytes themselves.
pub fn encode_frame(space: &IdSpace, from: NodeId, msg: &Message, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    buf.push(WIRE_VERSION);
    buf.push(kind_byte(msg));
    put_id(space, &from, buf);
    match msg {
        Message::CpRst { level } => buf.push(*level),
        Message::CpRly { level, table } => {
            buf.push(*level);
            put_table(space, table, buf);
        }
        Message::JoinWait => {}
        Message::JoinWaitRly {
            positive,
            next,
            table,
        } => {
            buf.push(u8::from(*positive));
            put_id(space, next, buf);
            put_table(space, table, buf);
        }
        Message::JoinNoti { table, filled_bits } => {
            put_table(space, table, buf);
            match filled_bits {
                None => buf.push(0),
                Some(bits) => {
                    buf.push(1);
                    put_bitvec(bits, buf);
                }
            }
        }
        Message::JoinNotiRly {
            positive,
            table,
            flag,
        } => {
            buf.push(u8::from(*positive));
            buf.push(u8::from(*flag));
            put_table(space, table, buf);
        }
        Message::InSysNoti => {}
        Message::SpeNoti { initiator, subject } => {
            put_id(space, initiator, buf);
            put_id(space, subject, buf);
        }
        Message::SpeNotiRly { subject } => put_id(space, subject, buf),
        Message::RvNghNoti { recorded } => put_state(*recorded, buf),
        Message::RvNghNotiRly { actual } => put_state(*actual, buf),
        Message::LeaveNoti { replacement } => put_opt_entry(space, replacement, buf),
        Message::LeaveNotiRly => {}
        Message::RvNghForget => {}
        Message::Ping => {}
        Message::Pong => {}
        Message::RepairQry {
            origin,
            target,
            level,
            digit,
        } => {
            put_id(space, origin, buf);
            put_id(space, target, buf);
            buf.push(*level);
            buf.push(*digit);
        }
        Message::RepairRly {
            level,
            digit,
            found,
        } => {
            buf.push(*level);
            buf.push(*digit);
            put_opt_entry(space, found, buf);
        }
    }
    let frame = buf.len() - start;
    let payload = (frame - LEN_PREFIX) as u32;
    buf[start..start + LEN_PREFIX].copy_from_slice(&payload.to_le_bytes());
    frame
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte not 0/1")),
        }
    }

    fn state(&mut self) -> Result<NodeState, WireError> {
        match self.u8()? {
            0 => Ok(NodeState::T),
            1 => Ok(NodeState::S),
            _ => Err(WireError::Malformed("state byte not T/S")),
        }
    }

    fn id(&mut self, space: &IdSpace) -> Result<NodeId, WireError> {
        let d = space.digit_count();
        let packed = self.take(packed_id_len(space))?;
        let mut digits = [0u8; 64];
        if space.base() <= 16 {
            for (i, digit) in digits.iter_mut().enumerate().take(d) {
                let byte = packed[i / 2];
                *digit = if i % 2 == 0 { byte & 0x0f } else { byte >> 4 };
            }
            if d % 2 == 1 && packed[d / 2] >> 4 != 0 {
                return Err(WireError::Malformed("nonzero id padding nibble"));
            }
        } else {
            digits[..d].copy_from_slice(packed);
        }
        space
            .id_from_digits(&digits[..d])
            .map_err(|_| WireError::Malformed("id digit exceeds base"))
    }

    fn level(&mut self, space: &IdSpace) -> Result<u8, WireError> {
        let level = self.u8()?;
        if level as usize > space.digit_count() {
            return Err(WireError::Malformed("level exceeds digit count"));
        }
        Ok(level)
    }

    fn entry(&mut self, space: &IdSpace) -> Result<Entry, WireError> {
        let node = self.id(space)?;
        let state = self.state()?;
        Ok(Entry { node, state })
    }

    fn opt_entry(&mut self, space: &IdSpace) -> Result<Option<Entry>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.entry(space)?)),
            _ => Err(WireError::Malformed("presence byte not 0/1")),
        }
    }

    fn table(&mut self, space: &IdSpace) -> Result<TableSnapshot, WireError> {
        let owner = self.id(space)?;
        let count = self.u16()? as usize;
        let slots = space.digit_count() * space.base() as usize;
        if count > slots {
            return Err(WireError::Malformed("row count exceeds table slots"));
        }
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let level = self.u8()?;
            let digit = self.u8()?;
            if level as usize >= space.digit_count() {
                return Err(WireError::Malformed("row level exceeds digit count"));
            }
            if digit as u16 >= space.base() {
                return Err(WireError::Malformed("row digit exceeds base"));
            }
            let entry = self.entry(space)?;
            rows.push(SnapshotRow {
                level,
                digit,
                entry,
            });
        }
        Ok(TableSnapshot::from_rows(owner, rows))
    }

    fn bitvec(&mut self, space: &IdSpace) -> Result<BitVec, WireError> {
        let noti_level = self.level(space)?;
        let count = self.u16()? as usize;
        let slots = space.digit_count() * space.base() as usize;
        if count > slots.div_ceil(64) {
            return Err(WireError::Malformed("bit-vector word count exceeds slots"));
        }
        let mut words = Vec::with_capacity(count);
        for _ in 0..count {
            words.push(self.u64()?);
        }
        Ok(BitVec { noti_level, words })
    }
}

/// Decodes one frame from the front of `bytes`.
///
/// Returns the overlay sender, the message, and how many bytes the frame
/// consumed (so a stream reader can advance). Rejects short buffers,
/// oversized length prefixes, wrong versions, unknown kinds, and every
/// malformed body field; never panics on arbitrary input.
pub fn decode_frame(space: &IdSpace, bytes: &[u8]) -> Result<(NodeId, Message, usize), WireError> {
    if bytes.len() < LEN_PREFIX {
        return Err(WireError::Truncated);
    }
    let payload = u32::from_le_bytes(bytes[..LEN_PREFIX].try_into().expect("4-byte slice"));
    let max = max_payload_len(space) as u32;
    if payload > max {
        return Err(WireError::Oversized { len: payload, max });
    }
    let payload = payload as usize;
    if bytes.len() - LEN_PREFIX < payload {
        return Err(WireError::Truncated);
    }
    let mut r = Reader {
        bytes: &bytes[LEN_PREFIX..LEN_PREFIX + payload],
        pos: 0,
    };
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = r.u8()?;
    let from = r.id(space)?;
    let msg = match kind {
        0 => Message::CpRst {
            level: r.level(space)?,
        },
        1 => Message::CpRly {
            level: r.level(space)?,
            table: r.table(space)?,
        },
        2 => Message::JoinWait,
        3 => Message::JoinWaitRly {
            positive: r.bool()?,
            next: r.id(space)?,
            table: r.table(space)?,
        },
        4 => {
            let table = r.table(space)?;
            let filled_bits = match r.u8()? {
                0 => None,
                1 => Some(r.bitvec(space)?),
                _ => return Err(WireError::Malformed("presence byte not 0/1")),
            };
            Message::JoinNoti { table, filled_bits }
        }
        5 => Message::JoinNotiRly {
            positive: r.bool()?,
            flag: r.bool()?,
            table: r.table(space)?,
        },
        6 => Message::InSysNoti,
        7 => Message::SpeNoti {
            initiator: r.id(space)?,
            subject: r.id(space)?,
        },
        8 => Message::SpeNotiRly {
            subject: r.id(space)?,
        },
        9 => Message::RvNghNoti {
            recorded: r.state()?,
        },
        10 => Message::RvNghNotiRly { actual: r.state()? },
        11 => Message::LeaveNoti {
            replacement: r.opt_entry(space)?,
        },
        12 => Message::LeaveNotiRly,
        13 => Message::RvNghForget,
        14 => Message::Ping,
        15 => Message::Pong,
        16 => {
            let origin = r.id(space)?;
            let target = r.id(space)?;
            let level = r.u8()?;
            let digit = r.u8()?;
            if level as usize >= space.digit_count() {
                return Err(WireError::Malformed("repair level exceeds digit count"));
            }
            if digit as u16 >= space.base() {
                return Err(WireError::Malformed("repair digit exceeds base"));
            }
            Message::RepairQry {
                origin,
                target,
                level,
                digit,
            }
        }
        17 => {
            let level = r.u8()?;
            let digit = r.u8()?;
            if level as usize >= space.digit_count() {
                return Err(WireError::Malformed("repair level exceeds digit count"));
            }
            if digit as u16 >= space.base() {
                return Err(WireError::Malformed("repair digit exceeds base"));
            }
            Message::RepairRly {
                level,
                digit,
                found: r.opt_entry(space)?,
            }
        }
        other => return Err(WireError::BadKind(other)),
    };
    if r.pos != r.bytes.len() {
        return Err(WireError::TrailingBytes {
            extra: r.bytes.len() - r.pos,
        });
    }
    Ok((from, msg, LEN_PREFIX + payload))
}

/// Decodes a datagram that must contain exactly one frame (UDP rule).
pub fn decode_datagram(space: &IdSpace, bytes: &[u8]) -> Result<(NodeId, Message), WireError> {
    let (from, msg, consumed) = decode_frame(space, bytes)?;
    if consumed != bytes.len() {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - consumed,
        });
    }
    Ok((from, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::{NeighborTable, ProtocolOptions};

    fn space() -> IdSpace {
        IdSpace::new(4, 5).unwrap()
    }

    fn id(s: &str) -> NodeId {
        space().parse_id(s).unwrap()
    }

    fn snap() -> TableSnapshot {
        let sp = space();
        let mut t = NeighborTable::new(sp, id("21233"));
        t.set_self_entries(NodeState::S);
        t.snapshot_levels(0, sp.digit_count())
    }

    fn roundtrip(sp: &IdSpace, from: NodeId, msg: &Message) {
        let mut buf = Vec::new();
        let n = encode_frame(sp, from, msg, &mut buf);
        assert_eq!(n, buf.len());
        let (got_from, got, consumed) = decode_frame(sp, &buf).expect("decode");
        assert_eq!(consumed, n);
        assert_eq!(got_from, from);
        let mut again = Vec::new();
        encode_frame(sp, got_from, &got, &mut again);
        assert_eq!(buf, again, "re-encode of decode differs");
    }

    #[test]
    fn every_kind_round_trips() {
        let sp = space();
        let me = id("21233");
        let peer = id("33121");
        let entry = Entry {
            node: peer,
            state: NodeState::S,
        };
        let msgs = vec![
            Message::CpRst { level: 3 },
            Message::CpRly {
                level: 2,
                table: snap(),
            },
            Message::JoinWait,
            Message::JoinWaitRly {
                positive: true,
                next: peer,
                table: snap(),
            },
            Message::JoinNoti {
                table: snap(),
                filled_bits: Some(BitVec {
                    noti_level: 2,
                    words: vec![0xdead_beef],
                }),
            },
            Message::JoinNotiRly {
                positive: false,
                table: snap(),
                flag: true,
            },
            Message::InSysNoti,
            Message::SpeNoti {
                initiator: me,
                subject: peer,
            },
            Message::SpeNotiRly { subject: peer },
            Message::RvNghNoti {
                recorded: NodeState::T,
            },
            Message::RvNghNotiRly {
                actual: NodeState::S,
            },
            Message::LeaveNoti {
                replacement: Some(entry),
            },
            Message::LeaveNotiRly,
            Message::RvNghForget,
            Message::Ping,
            Message::Pong,
            Message::RepairQry {
                origin: me,
                target: peer,
                level: 1,
                digit: 2,
            },
            Message::RepairRly {
                level: 1,
                digit: 2,
                found: Some(entry),
            },
        ];
        assert_eq!(msgs.len(), 18);
        for msg in &msgs {
            roundtrip(&sp, me, msg);
        }
    }

    #[test]
    fn byte_per_digit_spaces_round_trip() {
        let sp = IdSpace::new(32, 3).unwrap();
        let me = sp.parse_id("v0q").unwrap();
        let peer = sp.parse_id("7h2").unwrap();
        roundtrip(
            &sp,
            me,
            &Message::SpeNoti {
                initiator: peer,
                subject: me,
            },
        );
    }

    #[test]
    fn frames_stay_under_the_space_maximum() {
        let sp = space();
        let mut buf = Vec::new();
        encode_frame(
            &sp,
            id("21233"),
            &Message::JoinWaitRly {
                positive: true,
                next: id("33121"),
                table: snap(),
            },
            &mut buf,
        );
        assert!(buf.len() <= max_frame_len(&sp));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let sp = space();
        let mut buf = Vec::new();
        encode_frame(&sp, id("21233"), &Message::Ping, &mut buf);
        buf[LEN_PREFIX] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame(&sp, &buf).err(),
            Some(WireError::BadVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let sp = space();
        let mut buf = Vec::new();
        encode_frame(
            &sp,
            id("21233"),
            &Message::CpRly {
                level: 1,
                table: snap(),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert!(decode_frame(&sp, &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let sp = space();
        let mut buf = vec![0u8; LEN_PREFIX];
        buf[..LEN_PREFIX].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&sp, &buf) {
            Err(WireError::Oversized { len, .. }) => assert_eq!(len, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_in_a_datagram_are_rejected() {
        let sp = space();
        let mut buf = Vec::new();
        encode_frame(&sp, id("21233"), &Message::Pong, &mut buf);
        buf.push(0);
        assert!(matches!(
            decode_datagram(&sp, &buf),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
        // decode_frame itself tolerates the extra byte (stream framing).
        assert!(decode_frame(&sp, &buf).is_ok());
    }

    #[test]
    fn nonzero_padding_nibble_is_rejected() {
        let sp = space(); // d = 5, odd: top nibble of last id byte is padding
        let mut buf = Vec::new();
        encode_frame(&sp, id("21233"), &Message::Ping, &mut buf);
        let last_id_byte = LEN_PREFIX + 2 + packed_id_len(&sp) - 1;
        buf[last_id_byte] |= 0xf0;
        assert_eq!(
            decode_frame(&sp, &buf).err(),
            Some(WireError::Malformed("nonzero id padding nibble"))
        );
    }

    #[test]
    fn engine_defaults_fit_the_frame_bound() {
        // The options type is pulled in so the codec crate's bound is
        // checked against the same geometry the runtimes configure.
        let _ = ProtocolOptions::new();
        for (b, d) in [(2u16, 10usize), (4, 5), (16, 8), (16, 40), (36, 4)] {
            let sp = IdSpace::new(b, d).unwrap();
            assert!(max_frame_len(&sp) < 1 << 20, "({b},{d}) frame bound sane");
            assert!(packed_id_len(&sp) <= 64);
        }
    }
}
