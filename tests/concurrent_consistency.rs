//! End-to-end validation of Theorems 1 and 2 across a matrix of spaces,
//! population sizes, and schedules — plus coverage of the rare `SpeNotiMsg`
//! repair path.

use hyperring::core::{MessageKind, SimNetworkBuilder, Status};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::sim::UniformDelay;

/// Runs `n` members + `m` concurrent joiners and asserts both theorems.
fn run_case(b: u16, d: usize, n: usize, m: usize, seed: u64) -> u64 {
    let space = IdSpace::new(b, d).unwrap();
    let ids = distinct_ids(space, n + m, seed);
    let mut builder = SimNetworkBuilder::new(space);
    for id in &ids[..n] {
        builder.add_member(*id);
    }
    for (i, id) in ids[n..].iter().enumerate() {
        builder.add_joiner(*id, ids[i % n], 0);
    }
    let mut net = builder.build(UniformDelay::new(100, 150_000), seed);
    let report = net.run_limited(50_000_000);
    assert!(
        !report.truncated,
        "b={b} d={d} n={n} m={m} seed={seed}: no quiescence"
    );
    // Theorem 2.
    assert!(
        net.engines().all(|e| e.status() == Status::InSystem),
        "b={b} d={d} n={n} m={m} seed={seed}: joiner stuck"
    );
    // Theorem 1.
    let c = net.check_consistency();
    assert!(
        c.is_consistent(),
        "b={b} d={d} n={n} m={m} seed={seed}: {c}"
    );
    // Theorem 3.
    for e in net.joiners() {
        assert!(
            e.stats().cprst_plus_joinwait() <= (d + 1) as u64,
            "b={b} d={d} seed={seed}: Theorem 3 violated by {}",
            e.id()
        );
    }
    net.engines()
        .map(|e| e.stats().sent(MessageKind::SpeNoti))
        .sum()
}

#[test]
fn matrix_of_spaces_and_sizes() {
    for (b, d, n, m) in [
        (2u16, 10usize, 20usize, 20usize),
        (4, 6, 30, 30),
        (8, 5, 40, 20),
        (16, 8, 60, 30),
        (16, 40, 20, 12),
        (32, 4, 40, 20),
        (3, 7, 25, 25),
    ] {
        run_case(b, d, n, m, 1);
    }
}

#[test]
fn many_seeds_binary_space() {
    // Binary digits maximize suffix collisions — the most dependent joins.
    for seed in 0..15 {
        run_case(2, 9, 12, 24, seed);
    }
}

#[test]
fn minimal_network_single_member() {
    // V = {one node}; everyone else piles in concurrently.
    for seed in 0..5 {
        run_case(16, 6, 1, 30, seed);
    }
}

#[test]
fn spenoti_path_is_exercised_somewhere() {
    // Footnote 8: SpeNotiMsg is rarely sent — but the repair path must
    // actually fire under dense dependent concurrency. Hunt across seeds
    // in a tiny binary space until observed.
    let mut total = 0u64;
    for seed in 0..40 {
        total += run_case(2, 8, 4, 28, 1000 + seed);
        if total > 0 {
            break;
        }
    }
    assert!(
        total > 0,
        "SpeNotiMsg never sent across 40 dense concurrent-join runs; \
         the repair path is unreachable or the workload is too easy"
    );
}

#[test]
fn joiner_tables_have_only_s_states_at_the_end() {
    let space = IdSpace::new(8, 5).unwrap();
    let ids = distinct_ids(space, 50, 77);
    let mut builder = SimNetworkBuilder::new(space);
    for id in &ids[..30] {
        builder.add_member(*id);
    }
    for id in &ids[30..] {
        builder.add_joiner(*id, ids[0], 0);
    }
    let mut net = builder.build(UniformDelay::new(1_000, 90_000), 5);
    net.run();
    for e in net.engines() {
        for (l, d_, entry) in e.table().iter() {
            assert_eq!(
                entry.state,
                hyperring::core::NodeState::S,
                "{} entry ({l},{d_}) still T",
                e.id()
            );
        }
    }
}
