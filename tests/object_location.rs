//! Object location over tables produced by actual protocol runs: the
//! consistency guarantee (Theorem 1) is exactly what makes every node
//! resolve the same root for every object (deterministic location, P1).

use hyperring::core::SimNetworkBuilder;
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::object::{roots_from_everywhere, ObjectStore};
use hyperring::sim::UniformDelay;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn unique_roots_after_concurrent_joins(
        b in 2u16..=16,
        d in 3usize..=8,
        n in 2usize..=20,
        m in 1usize..=16,
        seed in 0u64..5_000,
    ) {
        let space = IdSpace::new(b, d).unwrap();
        let cap = space.capacity().unwrap_or(u128::MAX);
        prop_assume!(cap >= (n + m) as u128 * 4);
        let ids = distinct_ids(space, n + m, seed);
        let mut builder = SimNetworkBuilder::new(space);
        for id in &ids[..n] {
            builder.add_member(*id);
        }
        for (i, id) in ids[n..].iter().enumerate() {
            builder.add_joiner(*id, ids[i % n], 0);
        }
        let mut net = builder.build(UniformDelay::new(100, 100_000), seed);
        net.run_limited(20_000_000);
        prop_assert!(net.all_in_system());

        let store = ObjectStore::over(space, net.tables_iter());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        for _ in 0..10 {
            use rand::Rng;
            let _ = rng.gen::<u8>();
            let oid = space.random_id(&mut rng);
            let roots = roots_from_everywhere(&store, &oid);
            prop_assert_eq!(roots.len(), 1, "object {} resolved to {:?}", oid, roots);
        }
    }

    /// The borrowed-view store routes identically to the deprecated
    /// owned-snapshot store: same roots, same hop counts, on random
    /// consistent tables.
    #[test]
    #[allow(deprecated)]
    fn borrowed_store_routes_like_the_owned_one(
        b in 2u16..=16,
        d in 3usize..=8,
        n in 2usize..=40,
        seed in 0u64..5_000,
    ) {
        let space = IdSpace::new(b, d).unwrap();
        let cap = space.capacity().unwrap_or(u128::MAX);
        prop_assume!(cap >= n as u128 * 4);
        let ids = distinct_ids(space, n, seed);
        let tables = hyperring::core::build_consistent_tables(space, &ids);
        let old = ObjectStore::new(space, tables.clone());
        let new = ObjectStore::over(space, &tables);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0b9e);
        use rand::SeedableRng;
        for i in 0..20 {
            let oid = space.random_id(&mut rng);
            let start = ids[i % ids.len()];
            prop_assert_eq!(old.root_from(start, &oid), new.root_from(start, &oid));
        }
    }
}

#[test]
fn publish_survives_a_join_wave() {
    let space = IdSpace::new(16, 6).unwrap();
    let ids = distinct_ids(space, 40, 77);
    let mut builder = SimNetworkBuilder::new(space);
    for id in &ids[..24] {
        builder.add_member(*id);
    }
    let mut net = builder.build(UniformDelay::new(1_000, 50_000), 1);
    net.run();
    let mut store = ObjectStore::over(space, net.tables_iter());
    for (i, name) in ["a.txt", "b.txt", "c.txt"].iter().enumerate() {
        store.publish(ids[i], name);
    }

    // A wave of 16 joins; republish directory rows onto the new tables.
    let mut builder = SimNetworkBuilder::new(space);
    builder.with_member_tables(net.tables());
    for id in &ids[24..] {
        builder.add_joiner(*id, ids[0], 0);
    }
    let mut net2 = builder.build(UniformDelay::new(1_000, 50_000), 2);
    net2.run();
    assert!(net2.all_in_system());
    let (store, _moved) = store.retarget(net2.tables_iter());

    for name in ["a.txt", "b.txt", "c.txt"] {
        for from in &ids {
            let hit = store.lookup(*from, name).expect("still locatable");
            assert_eq!(hit.homes.len(), 1);
        }
        let oid = store.object_id(name);
        assert_eq!(roots_from_everywhere(&store, &oid).len(), 1);
    }
}

#[test]
fn lookups_survive_graceful_leaves() {
    let space = IdSpace::new(16, 6).unwrap();
    let ids = distinct_ids(space, 30, 13);
    let mut builder = SimNetworkBuilder::new(space);
    for id in &ids {
        builder.add_member(*id);
    }
    let mut net = builder.build(UniformDelay::new(1_000, 40_000), 3);
    net.run();
    let mut store = ObjectStore::over(space, net.tables_iter());
    store.publish(ids[5], "keep.dat");
    store.publish(ids[6], "keep.dat");

    // One of the holders and two bystanders leave: release the table
    // borrow while the network mutates, then rebind.
    let unbound = store.unbind();
    for v in [ids[6], ids[10], ids[20]] {
        net.depart(&v);
    }
    assert!(net.check_consistency().is_consistent());
    let (store, _moved) = unbound.bind(net.tables_iter());

    // The surviving copy is still found from every live node.
    for from in store.nodes().collect::<Vec<_>>() {
        let hit = store.lookup(from, "keep.dat").expect("copy survives");
        assert_eq!(hit.homes, vec![ids[5]]);
    }
}
