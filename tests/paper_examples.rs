//! The paper's worked examples, as integration tests: Figure 1's neighbor
//! table, the §2.2 routing walk-through, and Figure 2's C-set tree.

use hyperring::core::{build_consistent_tables, check_consistency, route, NeighborTable};
use hyperring::cset::{notify_suffix, tree_groups, CsetTemplate};
use hyperring::id::{IdSpace, NodeId};
use std::collections::HashMap;

fn parse_all(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
    ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
}

#[test]
fn figure_1_neighbor_table_of_21233() {
    let space = IdSpace::new(4, 5).unwrap();
    let ids = parse_all(
        space,
        &[
            "21233", "01100", "33121", "12232", "22303", "13113", "00123", "31033", "03133",
            "10233", "03233", "01233", "11233", "31233",
        ],
    );
    let tables = build_consistent_tables(space, &ids);
    assert!(check_consistency(space, &tables).is_consistent());
    let t = tables.iter().find(|t| t.owner() == ids[0]).unwrap();

    // Every filled cell of Figure 1.
    let expect = [
        (0usize, 0u8, "01100"),
        (0, 1, "33121"),
        (0, 2, "12232"),
        (0, 3, "21233"),
        (1, 0, "22303"),
        (1, 1, "13113"),
        (1, 2, "00123"),
        (1, 3, "21233"),
        (2, 0, "31033"),
        (2, 1, "03133"),
        (2, 2, "21233"),
        (3, 0, "10233"),
        (3, 1, "21233"),
        (3, 3, "03233"),
        (4, 0, "01233"),
        (4, 1, "11233"),
        (4, 2, "21233"),
        (4, 3, "31233"),
    ];
    for (l, d, id) in expect {
        assert_eq!(
            t.get(l, d).expect("filled").node.to_string(),
            id,
            "entry ({l},{d})"
        );
    }
    // Figure 1's empty entries at levels 2 and 3.
    assert!(t.get(2, 3).is_none(), "no node has suffix 333");
    assert!(t.get(3, 2).is_none(), "no node has suffix 2233");
    // 18 filled cells in total.
    assert_eq!(t.filled(), 18);
}

#[test]
fn section_2_2_routing_walk() {
    // 21233 -> 03231 reaches the target with the suffix match growing
    // every hop, within d hops.
    let space = IdSpace::new(4, 5).unwrap();
    let mut ids = parse_all(
        space,
        &[
            "21233", "01100", "33121", "12232", "22303", "13113", "00123", "31033", "03133",
            "10233", "03233", "01233", "11233", "31233",
        ],
    );
    ids.push(space.parse_id("03231").unwrap());
    ids.push(space.parse_id("13331").unwrap());
    let tables: HashMap<NodeId, NeighborTable> = build_consistent_tables(space, &ids)
        .into_iter()
        .map(|t| (t.owner(), t))
        .collect();
    let src = space.parse_id("21233").unwrap();
    let dst = space.parse_id("03231").unwrap();
    let out = route(src, dst, |id| tables.get(id));
    assert!(out.is_delivered());
    assert!(out.hops() <= 5);
}

#[test]
fn figure_2_cset_tree() {
    let space = IdSpace::new(8, 5).unwrap();
    let v = parse_all(space, &["72430", "10353", "62332", "13141", "31701"]);
    let w = parse_all(space, &["10261", "47051", "00261"]);

    // All three joiners share the notification suffix "1" — one tree.
    let groups = tree_groups(&v, &w);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].0.to_string(), "1");
    assert_eq!(groups[0].1.len(), 3);

    // The template has exactly Figure 2(b)'s nine C-sets.
    let template = CsetTemplate::build(space, groups[0].0, &w);
    assert_eq!(template.len(), 9);
    let names: Vec<String> = template.csets().map(|s| s.to_string()).collect();
    for cs in [
        "61", "51", "261", "051", "0261", "7051", "00261", "10261", "47051",
    ] {
        assert!(names.contains(&cs.to_string()), "missing C_{cs}");
    }
}

#[test]
fn section_3_3_mixed_notify_sets() {
    // W = {10261, 00261, 67320, 11445}: 10261 and 00261 share the tree
    // rooted at V_1, 67320 gets V_0, 11445 gets all of V.
    let space = IdSpace::new(8, 5).unwrap();
    let v = parse_all(space, &["72430", "10353", "62332", "13141", "31701"]);
    assert_eq!(
        notify_suffix(&v, &space.parse_id("10261").unwrap()).to_string(),
        "1"
    );
    assert_eq!(
        notify_suffix(&v, &space.parse_id("00261").unwrap()).to_string(),
        "1"
    );
    assert_eq!(
        notify_suffix(&v, &space.parse_id("67320").unwrap()).to_string(),
        "0"
    );
    assert!(notify_suffix(&v, &space.parse_id("11445").unwrap()).is_empty());
}
