//! Robustness beyond the paper's stated assumptions: the paper requires
//! every joiner to know a node *of V* (assumption (ii)); here joiners
//! bootstrap through **other joiners**, and through chains of joiners —
//! the protocol's T-node handling (delayed `JoinWaitRlyMsg`, `Q_j`) makes
//! even that converge.

use hyperring::core::{PayloadMode, ProtocolOptions, SimNetworkBuilder, Status};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::sim::UniformDelay;

#[test]
fn gateway_is_another_joiner() {
    let space = IdSpace::new(8, 5).unwrap();
    let ids = distinct_ids(space, 20, 5);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..10] {
        b.add_member(*id);
    }
    // joiner[0] enters through a member; every other joiner enters through
    // the previous joiner.
    b.add_joiner(ids[10], ids[0], 0);
    for i in 11..20 {
        b.add_joiner(ids[i], ids[i - 1], 0);
    }
    for seed in 0..10 {
        let mut net = b.build(UniformDelay::new(100, 120_000), seed);
        let report = net.run_limited(10_000_000);
        assert!(!report.truncated, "seed {seed}: no quiescence");
        assert!(
            net.engines().all(|e| e.status() == Status::InSystem),
            "seed {seed}: stuck joiner"
        );
        let c = net.check_consistency();
        assert!(c.is_consistent(), "seed {seed}: {c}");
    }
}

#[test]
fn deep_joiner_chain_from_single_member() {
    // One member; 24 joiners in a pure chain (each knows only the
    // previous joiner). The copy requests hit nodes with nearly empty
    // tables; JoinWait queueing must serialize everything.
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct_ids(space, 25, 8);
    let mut b = SimNetworkBuilder::new(space);
    b.add_member(ids[0]);
    for i in 1..25 {
        b.add_joiner(ids[i], ids[i - 1], 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 50_000), 3);
    let report = net.run_limited(10_000_000);
    assert!(!report.truncated);
    assert!(net.all_in_system());
    assert!(net.check_consistency().is_consistent());
}

#[test]
fn payload_modes_agree_on_final_tables() {
    // §6.2's reductions change message sizes, not outcomes: for the same
    // workload and seed, all three payload modes end with identical
    // table contents.
    let space = IdSpace::new(16, 6).unwrap();
    let ids = distinct_ids(space, 48, 10);
    let run = |payload: PayloadMode| {
        let mut b = SimNetworkBuilder::new(space);
        b.options(ProtocolOptions::with_payload(payload));
        for id in &ids[..32] {
            b.add_member(*id);
        }
        for id in &ids[32..] {
            b.add_joiner(*id, ids[0], 0);
        }
        let mut net = b.build(UniformDelay::new(1_000, 60_000), 9);
        net.run();
        assert!(net.all_in_system());
        assert!(net.check_consistency().is_consistent());
        // Fingerprint the entry contents.
        let mut fp = String::new();
        for t in net.tables() {
            fp.push_str(&t.owner().to_string());
            for (l, d, e) in t.iter() {
                fp.push_str(&format!(";{l}.{d}.{}", e.node));
            }
            fp.push('|');
        }
        fp
    };
    let full = run(PayloadMode::Full);
    let levels = run(PayloadMode::Levels);
    let bitvec = run(PayloadMode::BitVector);
    // All modes must be *consistent*; with this workload and schedule the
    // discovered tables coincide across modes. (Consistency, not equality,
    // is the protocol guarantee; equality here documents that the modes
    // walk the same discovery paths under identical timing.)
    assert_eq!(full, levels);
    assert_eq!(levels, bitvec);
}
