//! Bounded model checking of the join protocol: for tiny scenarios,
//! exhaustively explore **every** reachable message interleaving
//! (reliable, unordered delivery — exactly the paper's assumption (iii))
//! and assert that every quiescent state satisfies Theorems 1 and 2.
//!
//! This is stronger than any number of randomized simulations: within the
//! explored scenario there is *no* delivery order that breaks consistency.
//! State-space blowup is tamed by memoizing a digest of the complete
//! network state plus the multiset of in-flight messages.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use hyperring::core::{
    check_consistency, Effects, JoinEngine, Message, NeighborTable, ProtocolOptions, Status,
};
use hyperring::id::{IdSpace, NodeId};

/// One in-flight message.
#[derive(Clone)]
struct Flight {
    from: NodeId,
    to: NodeId,
    msg: Message,
}

fn digest_message(f: &Flight, h: &mut DefaultHasher) {
    f.from.hash(h);
    f.to.hash(h);
    std::mem::discriminant(&f.msg).hash(h);
    match &f.msg {
        Message::CpRst { level } => level.hash(h),
        Message::CpRly { level, table } => {
            level.hash(h);
            digest_snapshot_rows(table.rows(), h);
        }
        Message::JoinWait | Message::InSysNoti | Message::LeaveNotiRly | Message::RvNghForget => {}
        Message::JoinWaitRly {
            positive,
            next,
            table,
        } => {
            positive.hash(h);
            next.hash(h);
            digest_snapshot_rows(table.rows(), h);
        }
        Message::JoinNoti { table, filled_bits } => {
            digest_snapshot_rows(table.rows(), h);
            if let Some(bits) = filled_bits {
                bits.noti_level.hash(h);
                bits.words.hash(h);
            }
        }
        Message::JoinNotiRly {
            positive,
            table,
            flag,
        } => {
            positive.hash(h);
            flag.hash(h);
            digest_snapshot_rows(table.rows(), h);
        }
        Message::SpeNoti { initiator, subject } => {
            initiator.hash(h);
            subject.hash(h);
        }
        Message::SpeNotiRly { subject } => subject.hash(h),
        Message::RvNghNoti { recorded } => (*recorded == hyperring::core::NodeState::S).hash(h),
        Message::RvNghNotiRly { actual } => (*actual == hyperring::core::NodeState::S).hash(h),
        Message::LeaveNoti { replacement } => {
            if let Some(e) = replacement {
                e.node.hash(h);
            }
        }
        Message::Ping | Message::Pong => {}
        Message::RepairQry {
            origin,
            target,
            level,
            digit,
        } => {
            origin.hash(h);
            target.hash(h);
            level.hash(h);
            digit.hash(h);
        }
        Message::RepairRly {
            level,
            digit,
            found,
        } => {
            level.hash(h);
            digit.hash(h);
            if let Some(e) = found {
                e.node.hash(h);
            }
        }
    }
}

fn digest_snapshot_rows(rows: &[hyperring::core::SnapshotRow], h: &mut DefaultHasher) {
    for r in rows {
        r.level.hash(h);
        r.digit.hash(h);
        r.entry.node.hash(h);
        (r.entry.state == hyperring::core::NodeState::S).hash(h);
    }
}

#[derive(Clone)]
struct State {
    engines: Vec<JoinEngine>,
    pending: Vec<Flight>,
}

impl State {
    fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for e in &self.engines {
            e.hash_state(&mut h);
            0xabu8.hash(&mut h);
        }
        // Order-independent digest of the pending multiset.
        let mut msg_digests: Vec<u64> = self
            .pending
            .iter()
            .map(|f| {
                let mut mh = DefaultHasher::new();
                digest_message(f, &mut mh);
                mh.finish()
            })
            .collect();
        msg_digests.sort_unstable();
        msg_digests.hash(&mut h);
        h.finish()
    }
}

struct Explorer {
    space: IdSpace,
    visited: HashSet<u64>,
    quiescent: usize,
    explored: usize,
    cap: usize,
    truncated: bool,
}

impl Explorer {
    fn deliver(&mut self, mut state: State, idx: usize) -> State {
        let f = state.pending.swap_remove(idx);
        let pos = state
            .engines
            .iter()
            .position(|e| e.id() == f.to)
            .expect("known receiver");
        let mut out = Effects::new();
        state.engines[pos].handle(f.from, f.msg, &mut out);
        let from = state.engines[pos].id();
        for (to, msg) in out.drain_sends() {
            state.pending.push(Flight { from, to, msg });
        }
        state
    }

    fn explore(&mut self, state: State) {
        if self.explored >= self.cap {
            self.truncated = true;
            return;
        }
        if !self.visited.insert(state.digest()) {
            return;
        }
        self.explored += 1;
        if state.pending.is_empty() {
            // Quiescent: the theorems must hold *here*, whatever the path.
            self.quiescent += 1;
            assert!(
                state.engines.iter().all(|e| e.status() == Status::InSystem),
                "quiescent state with a stuck joiner (Theorem 2 violated)"
            );
            let tables: Vec<NeighborTable> =
                state.engines.iter().map(|e| e.table().clone()).collect();
            let report = check_consistency(self.space, &tables);
            assert!(
                report.is_consistent(),
                "quiescent state inconsistent (Theorem 1 violated): {report}"
            );
            return;
        }
        for i in 0..state.pending.len() {
            let next = self.deliver(state.clone(), i);
            self.explore(next);
        }
    }
}

/// Scales a state cap down in debug builds (the checker is ~10× slower
/// unoptimized; exhaustiveness is still claimed only when the run does
/// not truncate).
fn scaled(cap: usize) -> usize {
    if cfg!(debug_assertions) {
        cap / 8
    } else {
        cap
    }
}

/// Exhaustively checks a scenario: `members` become a consistent network,
/// `joiners` all start concurrently (each through the given gateway
/// index). Returns (quiescent states, explored states, truncated?).
fn check_scenario(
    b: u16,
    d: usize,
    members: &[&str],
    joiners: &[(&str, usize)],
    cap: usize,
) -> (usize, usize, bool) {
    let space = IdSpace::new(b, d).unwrap();
    let member_ids: Vec<NodeId> = members.iter().map(|s| space.parse_id(s).unwrap()).collect();
    let tables = hyperring::core::build_consistent_tables(space, &member_ids);
    let mut engines: Vec<JoinEngine> = tables
        .into_iter()
        .map(|t| JoinEngine::new_member(space, ProtocolOptions::new(), t))
        .collect();
    let mut pending = Vec::new();
    for (s, gw) in joiners {
        let id = space.parse_id(s).unwrap();
        let mut e = JoinEngine::new_joiner(space, ProtocolOptions::new(), id);
        let mut out = Effects::new();
        e.start_join(member_ids[*gw], &mut out);
        for (to, msg) in out.drain_sends() {
            pending.push(Flight { from: id, to, msg });
        }
        engines.push(e);
    }
    let mut ex = Explorer {
        space,
        visited: HashSet::new(),
        quiescent: 0,
        explored: 0,
        cap,
        truncated: false,
    };
    ex.explore(State { engines, pending });
    assert!(ex.quiescent > 0, "no quiescent state reached");
    (ex.quiescent, ex.explored, ex.truncated)
}

#[test]
fn exhaustive_single_join() {
    // One member, one joiner: small enough to be fully exhaustive.
    let (q, explored, truncated) = check_scenario(2, 2, &["00"], &[("11", 0)], scaled(1_000_000));
    assert!(!truncated, "single join must be fully explorable");
    assert!(q >= 1);
    assert!(explored > 1);
}

#[test]
fn exhaustive_two_independent_joins() {
    // b=2, d=2, member 00; joiners 01 and 10 — different notification
    // sets, fully exhaustive.
    let (q, _, truncated) =
        check_scenario(2, 2, &["00"], &[("01", 0), ("10", 0)], scaled(2_000_000));
    assert!(!truncated, "two-join scenario must be fully explorable");
    assert!(q >= 1);
}

#[test]
fn exhaustive_two_dependent_joins() {
    // The hard case at minimum scale: joiners 01 and 11 share the suffix
    // "1" which no member carries — the same C-set tree, racing for the
    // members' (0, 1) entries. Every interleaving must converge
    // consistently.
    let (q, explored, truncated) = check_scenario(
        2,
        2,
        &["00", "10"],
        &[("01", 0), ("11", 1)],
        scaled(4_000_000),
    );
    assert!(!truncated, "dependent-join scenario exceeded the state cap");
    assert!(q >= 1);
    // Sanity: the race genuinely branches (many distinct states).
    assert!(explored > 100, "only {explored} states explored");
}

#[test]
fn bounded_three_dependent_joins() {
    // Three joiners ending in "1" against one member (b=2, d=3): bounded
    // exploration — every state visited within the cap must be sound.
    let (q, explored, _truncated) = check_scenario(
        2,
        3,
        &["000"],
        &[("001", 0), ("011", 0), ("111", 0)],
        scaled(300_000),
    );
    assert!(q >= 1 || explored >= 300_000);
}
