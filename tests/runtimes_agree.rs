//! The same engine drives the deterministic simulator and the threaded
//! runtime; both must uphold Theorem 1, and simulator runs must be exactly
//! reproducible under a seed.

use hyperring::core::{
    build_consistent_tables, check_consistency, check_reachability, ProtocolOptions,
    SimNetworkBuilder,
};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::net::ThreadedNetwork;
use hyperring::sim::UniformDelay;

#[test]
fn threaded_and_simulated_runs_both_consistent_and_reachable() {
    let space = IdSpace::new(8, 5).unwrap();
    let ids = distinct_ids(space, 36, 55);
    let (v, w) = ids.split_at(24);
    let joiners: Vec<_> = w
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, v[i % v.len()]))
        .collect();

    // Simulator run.
    let mut b = SimNetworkBuilder::new(space);
    for id in v {
        b.add_member(*id);
    }
    for (id, gw) in &joiners {
        b.add_joiner(*id, *gw, 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 80_000), 12);
    net.run();
    let sim_tables = net.tables();
    assert!(check_consistency(space, &sim_tables).is_consistent());
    assert!(check_reachability(&sim_tables).is_empty());

    // Threaded run of the same workload.
    let members = build_consistent_tables(space, v);
    let threaded_tables = ThreadedNetwork::new(space, ProtocolOptions::new(), members)
        .run_joins(&joiners)
        .expect("threaded run quiesces");
    assert!(check_consistency(space, &threaded_tables).is_consistent());
    assert!(check_reachability(&threaded_tables).is_empty());
}

#[test]
fn simulator_runs_are_bit_reproducible() {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct_ids(space, 48, 7);

    let run = |seed: u64| {
        let mut b = SimNetworkBuilder::new(space);
        for id in &ids[..32] {
            b.add_member(*id);
        }
        for id in &ids[32..] {
            b.add_joiner(*id, ids[0], 0);
        }
        let mut net = b.build(UniformDelay::new(1_000, 90_000), seed);
        let report = net.run();
        // A full fingerprint: delivery count, finish time, every joiner's
        // message counts, and every table entry.
        let mut fp = format!("{}:{}", report.delivered, report.finished_at);
        for e in net.engines() {
            fp.push_str(&format!(";{}={}", e.id(), e.stats().total_sent()));
            for (l, d, entry) in e.table().iter() {
                fp.push_str(&format!(",{l}.{d}.{}", entry.node));
            }
        }
        fp
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}
