//! Property-based end-to-end tests: for *any* identifier space, member
//! set, joiner set, gateway assignment, latency range, and seed, the join
//! protocol terminates with consistent tables (Theorems 1 and 2) and obeys
//! the Theorem-3 message bound.

use hyperring::core::{SimNetworkBuilder, Status};
use hyperring::cset::{check_conditions, tree_groups, CsetTemplate, RealizedCset};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::sim::UniformDelay;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full multi-node simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn arbitrary_concurrent_joins_stay_consistent(
        b in 2u16..=16,
        d in 3usize..=10,
        n in 1usize..=24,
        m in 1usize..=24,
        lat_hi in 1_000u64..500_000,
        seed in 0u64..10_000,
    ) {
        let space = IdSpace::new(b, d).unwrap();
        // Skip degenerate spaces that cannot hold the population.
        let cap = space.capacity().unwrap_or(u128::MAX);
        prop_assume!(cap >= (n + m) as u128 * 4);

        let ids = distinct_ids(space, n + m, seed);
        let mut builder = SimNetworkBuilder::new(space);
        for id in &ids[..n] {
            builder.add_member(*id);
        }
        for (i, id) in ids[n..].iter().enumerate() {
            builder.add_joiner(*id, ids[i % n], 0);
        }
        let mut net = builder.build(UniformDelay::new(1, lat_hi), seed);
        let report = net.run_limited(20_000_000);
        prop_assert!(!report.truncated, "no quiescence");
        prop_assert!(net.engines().all(|e| e.status() == Status::InSystem));
        let c = net.check_consistency();
        prop_assert!(c.is_consistent(), "{}", c);
        for e in net.joiners() {
            prop_assert!(e.stats().cprst_plus_joinwait() <= (d + 1) as u64);
        }
    }

    #[test]
    fn cset_conditions_hold_for_every_tree(
        b in 2u16..=8,
        d in 4usize..=8,
        n in 2usize..=16,
        m in 2usize..=16,
        seed in 0u64..10_000,
    ) {
        let space = IdSpace::new(b, d).unwrap();
        let cap = space.capacity().unwrap_or(u128::MAX);
        prop_assume!(cap >= (n + m) as u128 * 4);

        let ids = distinct_ids(space, n + m, seed);
        let (v, w) = ids.split_at(n);
        let mut builder = SimNetworkBuilder::new(space);
        for id in v {
            builder.add_member(*id);
        }
        for (i, id) in w.iter().enumerate() {
            builder.add_joiner(*id, v[i % n], 0);
        }
        let mut net = builder.build(UniformDelay::new(100, 200_000), seed);
        net.run_limited(20_000_000);
        prop_assert!(net.all_in_system());

        let tables: std::collections::HashMap<_, _> =
            net.tables().into_iter().map(|t| (t.owner(), t)).collect();
        // Verify the §3.3 conditions tree by tree (Propositions 5.1–5.3).
        for (root, group) in tree_groups(v, w) {
            let template = CsetTemplate::build(space, root, &group);
            let realized = RealizedCset::compute(&template, v, &group, |id| tables.get(id));
            let violations =
                check_conditions(&template, &realized, &group, |id| tables.get(id));
            prop_assert!(violations.is_empty(), "tree V_{}: {:?}", root, violations);
        }
    }
}
