//! Failure-injection-style tests: the proof assumes only reliable delivery,
//! so the protocol must survive hostile *schedules* — extreme latency
//! spreads (replies overtaking requests), every joiner hammering the same
//! gateway, staggered starts that interleave join phases, and pathological
//! identifier structure (all joiners in one C-set branch).

use hyperring::core::{Entry, NodeState, SimNetworkBuilder, Status};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::sim::UniformDelay;

#[test]
fn extreme_latency_spread() {
    // Latencies spanning five orders of magnitude: massive reordering.
    let space = IdSpace::new(8, 5).unwrap();
    for seed in 0..8 {
        let ids = distinct_ids(space, 40, seed);
        let mut b = SimNetworkBuilder::new(space);
        for id in &ids[..20] {
            b.add_member(*id);
        }
        for id in &ids[20..] {
            b.add_joiner(*id, ids[0], 0);
        }
        let mut net = b.build(UniformDelay::new(1, 10_000_000), seed);
        net.run();
        assert!(net.all_in_system(), "seed {seed}");
        let c = net.check_consistency();
        assert!(c.is_consistent(), "seed {seed}: {c}");
    }
}

#[test]
fn single_gateway_pileup() {
    // All joiners know exactly one member (assumption (ii) minimal form).
    let space = IdSpace::new(16, 6).unwrap();
    let ids = distinct_ids(space, 64, 3);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..2] {
        b.add_member(*id);
    }
    for id in &ids[2..] {
        b.add_joiner(*id, ids[0], 0);
    }
    let mut net = b.build(UniformDelay::new(500, 80_000), 9);
    net.run();
    assert!(net.all_in_system());
    assert!(net.check_consistency().is_consistent());
}

#[test]
fn staggered_starts_interleave_phases() {
    // Joins start 1 ms apart with 100 ms latencies: every phase of one
    // join overlaps every phase of many others.
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct_ids(space, 48, 8);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..16] {
        b.add_member(*id);
    }
    for (i, id) in ids[16..].iter().enumerate() {
        b.add_joiner(*id, ids[i % 16], i as u64 * 1_000);
    }
    let mut net = b.build(UniformDelay::new(50_000, 150_000), 4);
    net.run();
    assert!(net.all_in_system());
    assert!(net.check_consistency().is_consistent());
}

#[test]
fn all_joiners_share_a_deep_suffix() {
    // Hand-built identifiers: every joiner ends in "11", so all of them
    // fight over the same C-set subtree (the paper's worst case).
    let space = IdSpace::new(4, 6).unwrap();
    let mut b = SimNetworkBuilder::new(space);
    let members = ["000000", "123123", "231032", "302211", "013311"];
    for s in members {
        b.add_member(space.parse_id(s).unwrap());
    }
    let joiners = [
        "111111", "222211", "333311", "001111", "330011", "101011", "210111", "032011",
    ];
    let g = space.parse_id(members[0]).unwrap();
    for s in joiners {
        b.add_joiner(space.parse_id(s).unwrap(), g, 0);
    }
    for seed in 0..10 {
        let mut net = b.build(UniformDelay::new(1, 300_000), seed);
        net.run();
        assert!(net.all_in_system(), "seed {seed}");
        let c = net.check_consistency();
        assert!(c.is_consistent(), "seed {seed}: {c}");
        // Every joiner ends up knowing a path toward every other joiner.
        for s in joiners {
            let x = space.parse_id(s).unwrap();
            for t in joiners {
                let y = space.parse_id(t).unwrap();
                if x == y {
                    continue;
                }
                let k = x.csuf_len(&y);
                assert!(
                    net.engine(&x).table().get(k, y.digit(k)).is_some(),
                    "seed {seed}: {x} has no hop toward {y}"
                );
            }
        }
    }
}

#[test]
fn members_see_joiners_with_s_state_eventually() {
    // After quiescence, no member may still record a joiner as T
    // (InSysNotiMsg / RvNghNotiRlyMsg must have propagated).
    let space = IdSpace::new(8, 4).unwrap();
    let ids = distinct_ids(space, 30, 21);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..15] {
        b.add_member(*id);
    }
    for id in &ids[15..] {
        b.add_joiner(*id, ids[1], 0);
    }
    let mut net = b.build(UniformDelay::new(10, 400_000), 2);
    net.run();
    for e in net.engines() {
        assert_eq!(e.status(), Status::InSystem);
        for (l, dg, entry) in e.table().iter() {
            assert_eq!(entry.state, NodeState::S, "{} ({l},{dg})", e.id());
            // And the entry is structurally valid.
            assert!(e.table().fits(l, dg, &entry.node));
            let _ = Entry {
                node: entry.node,
                state: entry.state,
            };
        }
    }
}
